"""Shared per-block analysis cache (the engine's caching layer).

Every consumer of a basic block — ``Facile.predict``, single-component
bound queries, ablation variants, the counterfactual analysis, the
back-end-only baseline analogs, and the oracle simulator — needs the same
derived artifacts: the characterized instruction stream, the macro-op
stream, and (for the Precedence bound) the weighted dependence graph.
The seed code re-derived all of them on every call; :class:`AnalysisCache`
memoizes them per block so each is computed at most once per
(block-signature, µarch) pair.

Cache-key design
----------------

* The **block signature** is the block's raw byte encoding
  (``block.raw``).  Two blocks with equal bytes decode to equal
  instruction streams, so every derived artifact is identical — this is
  what lets the parallel engine ship compact ``(index, raw bytes)``
  payloads to worker processes and still produce results identical to
  the in-process path.
* The **µarch dimension** is implicit: an :class:`AnalysisCache` is owned
  by one :class:`~repro.uops.database.UopsDatabase` (and therefore one
  :class:`~repro.uarch.config.MicroArchConfig`).  Callers that share a
  database share a cache via :meth:`AnalysisCache.shared`, so e.g. all
  seventeen Table-3 ablation variants analyze each block once.
* The expensive *Ports* sub-result is additionally memoized globally on
  its canonical port-multiset key (see
  :func:`repro.core.ports.ports_bound`), which deduplicates across
  blocks, µarchs with equal port maps, and predictors.

The cache is **LRU-bounded** (``max_blocks``, default
:data:`DEFAULT_MAX_BLOCKS`) and keeps lifetime ``hits`` / ``misses`` /
``evictions`` counters; :meth:`AnalysisCache.stats` returns them as the
JSON payload the prediction service serves at ``/stats``.

The cached artifacts are treated as immutable by all consumers; do not
mutate ``analyzed``/``ops`` in place.  The cache itself is **not**
thread-safe: batch consumers route all lookups through one thread (the
service's :class:`~repro.engine.batching.MicroBatcher` dispatcher does
exactly this).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.core.ports import PortsResult, critical_instructions, ports_bound
from repro.core.precedence import PrecedenceResult, precedence_bound
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.blockinfo import AnalyzedInstruction, MacroOp, analyze_block, \
    macro_ops
from repro.uops.database import UopsDatabase


class BlockAnalysis:
    """All derived artifacts of one block on one µarch, computed lazily.

    Every artifact — the characterized instruction stream, the macro-op
    stream, and the Ports/Precedence sub-results — is computed on first
    request and then shared by every later consumer (e.g. a
    precedence-only consumer never pays for macro-op construction).
    """

    __slots__ = ("block", "signature", "cfg", "db", "_analyzed", "_ops",
                 "_ports", "_ports_critical", "_precedence")

    def __init__(self, block: BasicBlock, db: UopsDatabase):
        self.block = block
        self.signature: bytes = block.raw
        self.cfg: MicroArchConfig = db.cfg
        self.db = db
        self._analyzed: Optional[List[AnalyzedInstruction]] = None
        self._ops: Optional[List[MacroOp]] = None
        self._ports: Optional[PortsResult] = None
        self._ports_critical: Optional[List[int]] = None
        self._precedence: Optional[PrecedenceResult] = None

    @property
    def analyzed(self) -> List[AnalyzedInstruction]:
        """The characterized instruction stream (computed once)."""
        if self._analyzed is None:
            self._analyzed = analyze_block(self.block, self.cfg, self.db)
        return self._analyzed

    @property
    def ops(self) -> List[MacroOp]:
        """The macro-op stream (computed once)."""
        if self._ops is None:
            self._ops = macro_ops(self.analyzed, self.cfg)
        return self._ops

    def ports(self) -> PortsResult:
        """The Ports bound of the block (computed once)."""
        if self._ports is None:
            self._ports = ports_bound(self.ops)
        return self._ports

    def ports_critical(self) -> List[int]:
        """Instruction indices experiencing the maximal port contention."""
        if self._ports_critical is None:
            self._ports_critical = critical_instructions(self.ops,
                                                         self.ports())
        return self._ports_critical

    def precedence(self) -> PrecedenceResult:
        """The Precedence bound of the block (computed once)."""
        if self._precedence is None:
            self._precedence = precedence_bound(self.block, self.db)
        return self._precedence


#: Default cache capacity.  Suites are a few hundred blocks; the cap
#: matters for process-lifetime shared databases (e.g. the no-elim
#: baseline database) and for the long-lived prediction service, where
#: it bounds memory while the LRU policy keeps the hot working set
#: resident.
DEFAULT_MAX_BLOCKS = 65536


class AnalysisCache:
    """Memoized :class:`BlockAnalysis` per block signature.

    One cache serves one :class:`UopsDatabase` (hence one µarch);
    consumers sharing a database should share the cache via
    :meth:`shared` so analysis work is deduplicated across them.

    Capacity-bounded with LRU replacement: once *max_blocks* analyses
    are held, each insertion evicts the least-recently-used entry (a
    hit refreshes the entry's recency).  Eviction only costs a
    re-analysis on a later lookup — results never change.  The LRU
    policy is what makes a bounded cache serve a long-lived prediction
    service well: a hot working set of blocks stays resident while
    one-off blocks age out.

    Attributes:
        hits / misses / evictions: lifetime lookup statistics (also
            surfaced by the service's ``/stats`` endpoint via
            :meth:`stats`).
    """

    def __init__(self, db: UopsDatabase,
                 max_blocks: int = DEFAULT_MAX_BLOCKS):
        if max_blocks < 1:
            raise ValueError("max_blocks must be >= 1")
        self.db = db
        self.cfg: MicroArchConfig = db.cfg
        self.max_blocks = max_blocks
        self._blocks: "OrderedDict[bytes, BlockAnalysis]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @classmethod
    def shared(cls, db: UopsDatabase) -> "AnalysisCache":
        """The cache attached to *db*, created on first use.

        All predictors/models constructed with the same database instance
        receive the same cache, which is what makes whole-suite variant
        sweeps (Table 3, counterfactuals) analyze each block once.
        """
        cache = getattr(db, "_analysis_cache", None)
        if cache is None:
            cache = cls(db)
            db._analysis_cache = cache
        return cache

    def analysis(self, block: BasicBlock) -> BlockAnalysis:
        """The (memoized) analysis of *block*.

        A hit refreshes the entry's LRU recency; a miss computes the
        analysis lazily and may evict the least-recently-used entry.
        """
        signature = block.raw
        found = self._blocks.get(signature)
        if found is None:
            self.misses += 1
            found = BlockAnalysis(block, self.db)
            while len(self._blocks) >= self.max_blocks:
                self._blocks.popitem(last=False)
                self.evictions += 1
            self._blocks[signature] = found
        else:
            self.hits += 1
            self._blocks.move_to_end(signature)
        return found

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """A JSON-ready snapshot of the cache counters.

        This is the payload behind the ``cache`` field of the prediction
        service's ``/stats`` endpoint (see ``docs/SERVICE.md``).
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._blocks),
            "max_blocks": self.max_blocks,
            "hit_rate": round(self.hit_rate, 4),
        }

    def clear(self) -> None:
        """Drop all cached analyses (statistics are kept)."""
        self._blocks.clear()

    def __len__(self) -> int:
        return len(self._blocks)
