"""Shared per-block analysis cache (the engine's caching layer).

Every consumer of a basic block — ``Facile.predict``, single-component
bound queries, ablation variants, the counterfactual analysis, the
back-end-only baseline analogs, and the oracle simulator — needs the same
derived artifacts: the characterized instruction stream, the macro-op
stream, and (for the Precedence bound) the weighted dependence graph.
The seed code re-derived all of them on every call; :class:`AnalysisCache`
memoizes them per block so each is computed at most once per
(block-signature, µarch) pair.

Cache-key design
----------------

* The **block signature** is the block's raw byte encoding
  (``block.raw``).  Two blocks with equal bytes decode to equal
  instruction streams, so every derived artifact is identical — this is
  what lets the parallel engine ship compact ``(index, raw bytes)``
  payloads to worker processes and still produce results identical to
  the in-process path.
* The **µarch dimension** is implicit: an :class:`AnalysisCache` is owned
  by one :class:`~repro.uops.database.UopsDatabase` (and therefore one
  :class:`~repro.uarch.config.MicroArchConfig`).  Callers that share a
  database share a cache via :meth:`AnalysisCache.shared`, so e.g. all
  seventeen Table-3 ablation variants analyze each block once.
* The expensive *Ports* sub-result is additionally memoized globally on
  its canonical port-multiset key (see
  :func:`repro.core.ports.ports_bound`), which deduplicates across
  blocks, µarchs with equal port maps, and predictors.

The cache is **LRU-bounded** (``max_blocks``, default
:data:`DEFAULT_MAX_BLOCKS`) and keeps lifetime ``hits`` / ``misses`` /
``evictions`` counters; :meth:`AnalysisCache.stats` returns them as the
JSON payload the prediction service serves at ``/stats``.  An optional
**persistent layer** (:class:`repro.engine.persist.PersistentAnalysisCache`)
sits under the LRU: memory misses consult it before re-deriving
(``disk_hits`` counts those), and :meth:`AnalysisCache.sync_persistent`
appends newly-computed artifacts back to disk so they survive restarts.

The cached artifacts are treated as immutable by all consumers; do not
mutate ``analyzed``/``ops`` in place.  The cache itself is **not**
thread-safe: batch consumers route all lookups through one thread (the
service's :class:`~repro.engine.batching.MicroBatcher` dispatcher does
exactly this).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.ports import PortsResult, critical_instructions, ports_bound
from repro.core.precedence import PrecedenceResult, precedence_bound
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.blockinfo import AnalyzedInstruction, MacroOp, analyze_block, \
    macro_ops
from repro.uops.database import UopsDatabase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.engine.persist import PersistentAnalysisCache


class BlockAnalysis:
    """All derived artifacts of one block on one µarch, computed lazily.

    Every artifact — the characterized instruction stream, the macro-op
    stream, and the Ports/Precedence sub-results — is computed on first
    request and then shared by every later consumer (e.g. a
    precedence-only consumer never pays for macro-op construction).
    """

    __slots__ = ("block", "signature", "cfg", "db", "_analyzed", "_ops",
                 "_ports", "_ports_critical", "_precedence")

    def __init__(self, block: BasicBlock, db: UopsDatabase):
        self.block = block
        self.signature: bytes = block.raw
        self.cfg: MicroArchConfig = db.cfg
        self.db = db
        self._analyzed: Optional[List[AnalyzedInstruction]] = None
        self._ops: Optional[List[MacroOp]] = None
        self._ports: Optional[PortsResult] = None
        self._ports_critical: Optional[List[int]] = None
        self._precedence: Optional[PrecedenceResult] = None

    @property
    def analyzed(self) -> List[AnalyzedInstruction]:
        """The characterized instruction stream (computed once)."""
        if self._analyzed is None:
            self._analyzed = analyze_block(self.block, self.cfg, self.db)
        return self._analyzed

    @property
    def ops(self) -> List[MacroOp]:
        """The macro-op stream (computed once)."""
        if self._ops is None:
            self._ops = macro_ops(self.analyzed, self.cfg)
        return self._ops

    def ports(self) -> PortsResult:
        """The Ports bound of the block (computed once)."""
        if self._ports is None:
            self._ports = ports_bound(self.ops)
        return self._ports

    def ports_critical(self) -> List[int]:
        """Instruction indices experiencing the maximal port contention."""
        if self._ports_critical is None:
            self._ports_critical = critical_instructions(self.ops,
                                                         self.ports())
        return self._ports_critical

    def precedence(self) -> PrecedenceResult:
        """The Precedence bound of the block (computed once)."""
        if self._precedence is None:
            self._precedence = precedence_bound(self.block, self.db)
        return self._precedence

    # -- persistence hooks (repro.engine.persist) ----------------------

    def export_artifacts(self) -> Dict[str, object]:
        """The lazily-computed slots, ``None`` where not yet computed."""
        return {"analyzed": self._analyzed, "ops": self._ops,
                "ports": self._ports, "ports_critical": self._ports_critical,
                "precedence": self._precedence}

    def import_artifacts(self, artifacts: Dict[str, object]) -> None:
        """Pre-fill the lazy slots from a persisted artifact dict.

        Unknown keys are ignored and ``None`` values never overwrite a
        computed slot, so a stale or partial record degrades to lazy
        recomputation rather than failing.
        """
        for name in ("analyzed", "ops", "ports", "ports_critical",
                     "precedence"):
            value = artifacts.get(name)
            if value is not None:
                setattr(self, "_" + name, value)


#: Default cache capacity.  Suites are a few hundred blocks; the cap
#: matters for process-lifetime shared databases (e.g. the no-elim
#: baseline database) and for the long-lived prediction service, where
#: it bounds memory while the LRU policy keeps the hot working set
#: resident.
DEFAULT_MAX_BLOCKS = 65536


class AnalysisCache:
    """Memoized :class:`BlockAnalysis` per block signature.

    One cache serves one :class:`UopsDatabase` (hence one µarch);
    consumers sharing a database should share the cache via
    :meth:`shared` so analysis work is deduplicated across them.

    Capacity-bounded with LRU replacement: once *max_blocks* analyses
    are held, each insertion evicts the least-recently-used entry (a
    hit refreshes the entry's recency).  Eviction only costs a
    re-analysis on a later lookup — results never change.  The LRU
    policy is what makes a bounded cache serve a long-lived prediction
    service well: a hot working set of blocks stays resident while
    one-off blocks age out.

    Attributes:
        hits / misses / evictions: lifetime lookup statistics (also
            surfaced by the service's ``/stats`` endpoint via
            :meth:`stats`).
    """

    def __init__(self, db: UopsDatabase,
                 max_blocks: int = DEFAULT_MAX_BLOCKS,
                 persistent: Optional["PersistentAnalysisCache"] = None):
        if max_blocks < 1:
            raise ValueError("max_blocks must be >= 1")
        self.db = db
        self.cfg: MicroArchConfig = db.cfg
        self.max_blocks = max_blocks
        self.persistent = persistent
        self._blocks: "OrderedDict[bytes, BlockAnalysis]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0

    @classmethod
    def shared(cls, db: UopsDatabase) -> "AnalysisCache":
        """The cache attached to *db*, created on first use.

        All predictors/models constructed with the same database instance
        receive the same cache, which is what makes whole-suite variant
        sweeps (Table 3, counterfactuals) analyze each block once.
        """
        cache = getattr(db, "_analysis_cache", None)
        if cache is None:
            cache = cls(db)
            db._analysis_cache = cache
        return cache

    def analysis(self, block: BasicBlock) -> BlockAnalysis:
        """The (memoized) analysis of *block*.

        A hit refreshes the entry's LRU recency; a miss computes the
        analysis lazily and may evict the least-recently-used entry.
        """
        signature = block.raw
        found = self._blocks.get(signature)
        if found is None:
            self.misses += 1
            found = BlockAnalysis(block, self.db)
            if self.persistent is not None:
                artifacts = self.persistent.load(signature)
                if artifacts is not None:
                    found.import_artifacts(artifacts)
                    self.disk_hits += 1
            while len(self._blocks) >= self.max_blocks:
                self._blocks.popitem(last=False)
                self.evictions += 1
            self._blocks[signature] = found
        else:
            self.hits += 1
            self._blocks.move_to_end(signature)
        return found

    def sync_persistent(self) -> int:
        """Flush resident analyses to the persistent layer (if any).

        Every resident block whose computed artifact coverage grew since
        its last store is appended to the on-disk cache in one batch.
        Returns the number of records written; 0 without a persistent
        layer attached.
        """
        if self.persistent is None:
            return 0
        for signature, analysis in self._blocks.items():
            self.persistent.maybe_store(signature,
                                        analysis.export_artifacts())
        return self.persistent.flush()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """A JSON-ready snapshot of the cache counters.

        This is the payload behind the ``cache`` field of the prediction
        service's ``/stats`` endpoint (see ``docs/SERVICE.md``).
        """
        snapshot: Dict[str, object] = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._blocks),
            "max_blocks": self.max_blocks,
            "hit_rate": round(self.hit_rate, 4),
            "disk_hits": self.disk_hits,
        }
        if self.persistent is not None:
            snapshot["persistent"] = self.persistent.stats()
        return snapshot

    def clear(self) -> None:
        """Drop all cached analyses (statistics are kept)."""
        self._blocks.clear()

    def __len__(self) -> int:
        return len(self._blocks)
