"""Persistent on-disk analysis cache (the layer under the LRU).

The in-memory :class:`~repro.engine.cache.AnalysisCache` dies with its
process, so a restarted ``facile serve`` re-derives every block from
scratch.  :class:`PersistentAnalysisCache` fixes that: it maps the
canonical block signature (``block.raw``) to the block's serialized
derived artifacts — the analyzed instruction stream, the macro-op
stream, and the Ports/Precedence sub-results — in one append-only file
per µarch, so a warm working set survives restarts and can be
pre-seeded from a corpus (``facile serve --warm <file>``).

File format
-----------

A cache file is a sequence of self-delimiting records::

    [magic 4B] [payload length 4B BE] [crc32 4B BE] [payload]

where the payload is ``[sig length 2B BE] [sig] [pickled artifacts]``.
The first record is a header whose signature is :data:`HEADER_SIG` and
whose artifact dict carries the format version and the µarch
abbreviation.  Records for the same signature may repeat (appends never
rewrite); the *last* record wins, so re-storing a block whose lazy
artifact coverage grew simply appends a richer record.

Robustness guarantees (tested in ``tests/engine/test_persist.py``):

* **Corruption never crashes.**  A record failing its length or CRC
  check — a torn write, a truncated tail, flipped bytes — is skipped
  and the loader resynchronizes on the next magic marker; every intact
  record before and after the damage is still recovered.
* **Foreign files are ignored, then rewritten.**  A file whose header
  is missing, unparseable, or names another µarch/format contributes no
  entries and is atomically replaced (via :meth:`compact`) on the next
  flush.
* **Concurrent writers append atomically.**  Each :meth:`flush` emits
  its whole batch as one ``O_APPEND`` write, so two processes sharing a
  cache file interleave whole batches, never partial records.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Frame marker opening every record.  Deliberately not printable ASCII
#: so text files never parse as caches by accident.
REC_MAGIC = b"\xf5\xac\x1b\x01"

#: Signature of the per-file header record.
HEADER_SIG = b"__facile_cache__"

#: On-disk format version (bumped on incompatible layout changes;
#: mismatched files are ignored and rewritten).
FORMAT_VERSION = 1

#: Upper bound on a single record's payload; anything larger is treated
#: as corruption (a sane analysis record is a few KB).
MAX_RECORD_BYTES = 64 * 1024 * 1024

#: The lazily-computed artifact slots persisted per block, in the order
#: ``BlockAnalysis`` declares them.
ARTIFACT_SLOTS = ("_analyzed", "_ops", "_ports", "_ports_critical",
                  "_precedence")


def _frame(payload: bytes) -> bytes:
    """One self-delimiting record around *payload*."""
    return (REC_MAGIC + struct.pack(">I", len(payload))
            + struct.pack(">I", zlib.crc32(payload) & 0xFFFFFFFF)
            + payload)


def _encode(signature: bytes, blob: bytes) -> bytes:
    return struct.pack(">H", len(signature)) + signature + blob


def _decode(payload: bytes) -> Tuple[bytes, bytes]:
    (sig_len,) = struct.unpack_from(">H", payload)
    signature = payload[2:2 + sig_len]
    if len(signature) != sig_len:
        raise ValueError("record shorter than its signature length")
    return signature, payload[2 + sig_len:]


def _scan(data: bytes) -> Tuple[List[bytes], int]:
    """All intact record payloads in *data*, plus a corruption count.

    Damaged regions (bad CRC, impossible length, truncated tail, bytes
    between records) are counted once each and skipped by searching for
    the next :data:`REC_MAGIC` occurrence — so corruption in the middle
    of a file never hides the intact records after it.
    """
    payloads: List[bytes] = []
    corrupt = 0
    pos = 0
    size = len(data)
    while pos < size:
        start = data.find(REC_MAGIC, pos)
        if start < 0:
            corrupt += 1  # trailing garbage with no further marker
            break
        if start > pos:
            corrupt += 1  # garbage between records
        header_end = start + len(REC_MAGIC) + 8
        if header_end > size:
            corrupt += 1  # truncated mid-header
            break
        length, crc = struct.unpack_from(">II", data, start + 4)
        end = header_end + length
        if length > MAX_RECORD_BYTES or end > size:
            # Impossible length or truncated payload: resynchronize on
            # the next marker past this one.
            corrupt += 1
            pos = start + 1
            continue
        payload = data[header_end:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            corrupt += 1
            pos = start + 1
            continue
        payloads.append(payload)
        pos = end
    return payloads, corrupt


class PersistentAnalysisCache:
    """Block-signature → serialized analysis artifacts, on disk.

    One instance owns one file and one µarch.  Lookups
    (:meth:`load`) deserialize on demand; stores are buffered and
    written batch-at-a-time by :meth:`flush` (a single append per
    batch).  :meth:`compact` rewrites the file atomically, dropping
    superseded duplicate records.
    """

    def __init__(self, path: str, uarch: str):
        self.path = str(path)
        self.uarch = uarch
        self._entries: Dict[bytes, bytes] = {}
        #: How many artifact slots the stored record covers, per block —
        #: re-stores only happen when coverage grows.
        self._coverage: Dict[bytes, int] = {}
        self._pending: List[bytes] = []
        self._needs_rewrite = False
        self.loaded = 0
        self.disk_hits = 0
        self.stores = 0
        self.corrupt_records = 0
        self.rewrites = 0
        self._read_file()

    @classmethod
    def for_uarch(cls, cache_dir: str, uarch: str) -> \
            "PersistentAnalysisCache":
        """The cache file for *uarch* under *cache_dir* (created)."""
        os.makedirs(cache_dir, exist_ok=True)
        return cls(os.path.join(cache_dir, f"{uarch}.facc"), uarch)

    # -- loading -------------------------------------------------------

    def _read_file(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except (FileNotFoundError, IsADirectoryError):
            return
        except OSError:
            self._needs_rewrite = True
            return
        if not data:
            return
        payloads, corrupt = _scan(data)
        self.corrupt_records += corrupt
        if corrupt:
            self._needs_rewrite = True
        header_ok = False
        entries: Dict[bytes, bytes] = {}
        for index, payload in enumerate(payloads):
            try:
                signature, blob = _decode(payload)
            except (ValueError, struct.error):
                self.corrupt_records += 1
                self._needs_rewrite = True
                continue
            if signature == HEADER_SIG:
                if index == 0:
                    header_ok = self._header_matches(blob)
                continue
            entries[signature] = blob  # later records win
        if not header_ok:
            # Missing/foreign header: the file is not (or no longer) a
            # cache for this µarch.  Contribute nothing and schedule an
            # atomic rewrite — never crash, never trust the entries.
            self._needs_rewrite = True
            return
        self._entries = entries
        self._coverage = {sig: self._blob_coverage(blob)
                          for sig, blob in entries.items()}
        self.loaded = len(entries)

    def _header_matches(self, blob: bytes) -> bool:
        try:
            header = pickle.loads(blob)
        except Exception:  # noqa: BLE001 - any unpickling failure
            return False
        return (isinstance(header, dict)
                and header.get("format") == FORMAT_VERSION
                and header.get("uarch") == self.uarch)

    @staticmethod
    def _blob_coverage(blob: bytes) -> int:
        try:
            artifacts = pickle.loads(blob)
        except Exception:  # noqa: BLE001
            return 0
        if not isinstance(artifacts, dict):
            return 0
        return sum(1 for value in artifacts.values() if value is not None)

    def __contains__(self, signature: bytes) -> bool:
        return signature in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def load(self, signature: bytes) -> Optional[Dict[str, object]]:
        """The stored artifact dict for *signature*, or ``None``.

        A hit counts toward ``disk_hits``; an entry that fails to
        deserialize (e.g. the repo's classes changed shape) is dropped
        silently — persistence is an optimization, never a correctness
        dependency.
        """
        blob = self._entries.get(signature)
        if blob is None:
            return None
        try:
            artifacts = pickle.loads(blob)
        except Exception:  # noqa: BLE001
            self._entries.pop(signature, None)
            self._coverage.pop(signature, None)
            self.corrupt_records += 1
            self._needs_rewrite = True
            return None
        if not isinstance(artifacts, dict):
            return None
        self.disk_hits += 1
        return artifacts

    # -- storing -------------------------------------------------------

    def maybe_store(self, signature: bytes,
                    artifacts: Dict[str, object]) -> bool:
        """Buffer *artifacts* for *signature* if they add coverage.

        Only slots already computed (non-``None``) are persisted; a
        block whose record already covers at least as many slots is
        skipped, so repeated syncs of a stable working set write
        nothing.  Returns whether a record was buffered.
        """
        coverage = sum(1 for value in artifacts.values()
                       if value is not None)
        if coverage == 0 or coverage <= self._coverage.get(signature, 0):
            return False
        try:
            blob = pickle.dumps(artifacts,
                                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 - unpicklable artifact
            return False
        self._entries[signature] = blob
        self._coverage[signature] = coverage
        self._pending.append(_frame(_encode(signature, blob)))
        self.stores += 1
        return True

    def _header_frame(self) -> bytes:
        blob = pickle.dumps({"format": FORMAT_VERSION,
                             "uarch": self.uarch},
                            protocol=pickle.HIGHEST_PROTOCOL)
        return _frame(_encode(HEADER_SIG, blob))

    def flush(self) -> int:
        """Write all buffered records; returns how many were written.

        A damaged or foreign file is first replaced wholesale via
        :meth:`compact`; otherwise the batch (preceded by a header when
        the file does not exist yet) is appended with a single
        ``O_APPEND`` write, which is what keeps concurrent writers from
        tearing each other's records.
        """
        if self._needs_rewrite:
            self.compact()
            return len(self._entries)
        if not self._pending:
            return 0
        batch = self._pending
        self._pending = []
        chunks = list(batch)
        if not os.path.exists(self.path):
            chunks.insert(0, self._header_frame())
        flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
        fd = os.open(self.path, flags, 0o644)
        try:
            os.write(fd, b"".join(chunks))
        finally:
            os.close(fd)
        return len(batch)

    def compact(self) -> None:
        """Atomically rewrite the file from the in-memory entries.

        Used to recover damaged/foreign files and to drop superseded
        duplicate records.  Readers never observe a partial file: the
        rewrite lands via ``os.replace`` of a temp file in the same
        directory.
        """
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(prefix=".facc-", dir=directory)
        try:
            chunks = [self._header_frame()]
            chunks.extend(_frame(_encode(sig, blob))
                          for sig, blob in self._entries.items())
            os.write(fd, b"".join(chunks))
        finally:
            os.close(fd)
        os.replace(temp_path, self.path)
        self._pending = []
        self._needs_rewrite = False
        self.rewrites += 1

    # -- reporting -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-ready counters (nested under the service's ``/stats``)."""
        return {
            "path": self.path,
            "entries": len(self._entries),
            "loaded": self.loaded,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "corrupt_records": self.corrupt_records,
            "rewrites": self.rewrites,
        }


def load_corpus(path: str) -> List[str]:
    """Block hex strings from a warm-up corpus file.

    One block per line; blank lines and ``#`` comments are skipped, and
    only the first comma-separated field is read — so both plain hex
    lists and BHive-style ``<hex>,<throughput>`` CSVs work unchanged.
    """
    hexes: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            field = line.split(",", 1)[0].strip()
            if field:
                hexes.append(field)
    return hexes
