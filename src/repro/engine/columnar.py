"""The columnar prediction core (template-level compiled fast path).

The object-model reference path (:class:`repro.core.model.Facile`)
re-traverses per-instruction Python objects on every cold prediction:
decode, µop characterization, macro-fusion pairing, and the component
bounds all walk object graphs.  This module lowers that work into a
**template-level compilation pass** so it is paid once per *instruction
signature* instead of once per raw-bytes block:

* Every decoded instruction form is split into **form bytes** (prefixes,
  REX/VEX, escapes, opcode, ModRM, SIB — everything that determines the
  template and all register operands) and **payload bytes** (the
  displacement and immediate values).  A global byte trie maps raw bytes
  straight to a form leaf without object decoding.
* A block's **signature** is the tuple of its instructions'
  ``(form leaf, displacement-is-zero)`` pairs.  The analysis of a block
  is a pure function of its signature: payload bytes only influence the
  model through ``disp != 0`` (memory-operand component counts), so two
  blocks that differ only in displacement/immediate *values* share one
  compiled entry — unseen blocks hit warm sub-results.
* Each compiled entry stores compact numeric **columns** (per-instruction
  lengths, opcode offsets, LCP flags; per-macro-op fused/issued µop
  counts) plus the representative macro-op stream.  The summable and
  layout bounds (Issue, DSB, LSD, Predec) are computed from the columns
  with numpy — batched across whole suites in
  :meth:`ColumnarCore.predict_many` via ``np.add.reduceat`` — while the
  irreducibly sequential bounds (Dec's Algorithm 1, the Ports pair-union
  heuristic, the Precedence max-cycle-ratio) run the *reference*
  component implementations once per entry on a representative block,
  which is what makes the core bit-for-bit equal to
  :class:`~repro.core.model.Facile` by construction.  Ports results
  additionally flow through the shared global multiset memo
  (:func:`repro.core.ports.ports_bound_counts`).

Exactness argument, in one paragraph: the form bytes determine the
template, every register operand (ModRM/SIB/REX/VEX.vvvv/and
reg-in-opcode fields are form bytes), all lengths, the opcode offset,
and the LCP flag.  Displacement and immediate values are the only
per-instruction variation left, and the model reads them in exactly one
place — ``disp != 0`` in the µop database's memory-component count (and
the ``[disp32]``-with-no-base validity check).  Hence a representative
instruction with the same ``(form, disp==0)`` signature yields an
identical analysis, and every component bound computed from it equals
the reference value.  The differential harness
(``tests/engine/test_columnar_equiv.py``) enforces this on every
generator category, every µarch, and every mode, plus seeded fuzz.

The trie is guarded, not trusted: a form is only inserted when doing so
keeps the leaf set prefix-free (fixed-byte NOP patterns are installed
first); any form that would conflict is *poisoned* and its instructions
fall back to exact-raw-bytes leaves, which is always correct, merely
less shared.  Like the Ports memo, the global tables are process-wide
and not thread-safe under mutation; batch consumers route lookups
through one thread (the service's MicroBatcher dispatcher does).

Select the core per :class:`~repro.engine.engine.Engine` with
``core="object"|"columnar"``, per process with ``REPRO_ENGINE_CORE``,
or per CLI run with ``facile predict --core``.  The default is
``columnar``; the service tier pins ``object`` (its persistent cache
and /stats surfaces are built on the object path — see
``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import math
import os
from collections import Counter, OrderedDict
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, \
    Tuple

import numpy as np

from repro.core.components import (
    Component,
    LOOP_COMPONENTS,
    ThroughputMode,
    UNROLLED_COMPONENTS,
)
from repro.core.decoder import dec_bound, simple_dec_bound
from repro.core.jcc import affected_by_jcc_erratum
from repro.core.lsd import lsd_unroll_count
from repro.core.model import Prediction, _combine, _critical_indices
from repro.core.ports import PortsResult, critical_instructions, \
    ports_bound_counts
from repro.core.precedence import PrecedenceResult, precedence_bound
from repro.isa.block import BasicBlock
from repro.isa.decoder import decode
from repro.isa.instruction import Instruction
from repro.isa.templates import _NOP_BYTES
from repro.uarch.config import MicroArchConfig
from repro.uops.blockinfo import analyze_block, macro_ops
from repro.uops.database import UopsDatabase

_ALL_COMPONENTS = frozenset(Component)
_BLOCK = 16  # predecoder fetch granularity (repro.core.predecoder)

#: Recognized core names, and the engine-wide default.
VALID_CORES = ("object", "columnar")
DEFAULT_CORE = "columnar"

#: Compiled entries held per core (LRU-bounded, like the analysis cache).
DEFAULT_MAX_ENTRIES = 65536


def resolve_core(core: Optional[str] = None) -> str:
    """Resolve the effective prediction core name.

    Precedence: the explicit *core* argument, then the
    ``REPRO_ENGINE_CORE`` environment variable, then
    :data:`DEFAULT_CORE`.  An invalid explicit argument raises; an
    invalid environment value warns and falls back to the default (it
    is read at engine construction inside arbitrary commands, where
    crashing would be worse than serving the default core).
    """
    if core is not None:
        if core not in VALID_CORES:
            raise ValueError(
                f"unknown prediction core {core!r} "
                f"(expected one of {', '.join(VALID_CORES)})")
        return core
    env = os.environ.get("REPRO_ENGINE_CORE", "").strip().lower()
    if env in VALID_CORES:
        return env
    if env:
        import warnings
        warnings.warn(
            f"ignoring invalid REPRO_ENGINE_CORE={env!r} "
            f"(expected one of {', '.join(VALID_CORES)}); "
            f"using {DEFAULT_CORE!r}")
    return DEFAULT_CORE


# ---------------------------------------------------------------------------
# The global form trie (µarch-independent, process-wide)
# ---------------------------------------------------------------------------

class _Leaf:
    """One known instruction form: how to slice its encoding.

    Identity-hashed; a leaf object *is* the signature component for
    every instruction sharing its form bytes.
    """

    __slots__ = ("form_len", "disp_len", "imm_len")

    def __init__(self, form_len: int, disp_len: int, imm_len: int):
        self.form_len = form_len
        self.disp_len = disp_len
        self.imm_len = imm_len

    @property
    def length(self) -> int:
        return self.form_len + self.disp_len + self.imm_len


#: A signature component: (form leaf, displacement-is-zero).
_SigItem = Tuple[_Leaf, bool]
#: A block signature.
Signature = Tuple[_SigItem, ...]


class _TrieNode:
    __slots__ = ("children", "leaf")

    def __init__(self):
        self.children: Dict[int, "_TrieNode"] = {}
        self.leaf: Optional[_Leaf] = None


class _FormLayoutError(Exception):
    """An instruction whose byte layout defeats the form split."""


#: Poison marker: forms that cannot be inserted without breaking the
#: trie's prefix-freeness; their instructions use exact-raw leaves.
_POISONED = object()

_TRIE_ROOT = _TrieNode()
_FORM_INDEX: Dict[bytes, object] = {}  # form bytes -> _Leaf | _POISONED
_RAW_LEAVES: Dict[bytes, _Leaf] = {}   # exact-raw fallback leaves
#: Representative decoded instruction per signature component.  The
#: analysis of any instruction with the same signature is identical,
#: so one representative serves every core and µarch.
_REP_INSTRS: Dict[_SigItem, Instruction] = {}


def _insert_form(form: bytes, disp_len: int, imm_len: int) -> Optional[_Leaf]:
    """Insert a form into the trie, keeping the leaf set prefix-free.

    Returns the new leaf, or ``None`` (and poisons the form) when the
    insertion would create a nested leaf — in which case callers fall
    back to exact-raw leaves, which is always correct.
    """
    node = _TRIE_ROOT
    for byte in form:
        if node.leaf is not None:  # a strict prefix is a known form
            _FORM_INDEX[form] = _POISONED
            return None
        node = node.children.setdefault(byte, _TrieNode())
    if node.leaf is not None or node.children:
        _FORM_INDEX[form] = _POISONED
        return None
    leaf = _Leaf(len(form), disp_len, imm_len)
    node.leaf = leaf
    _FORM_INDEX[form] = leaf
    return leaf


def _install_nops() -> None:
    """Install the fixed-byte NOP patterns as whole-form leaves.

    They go in first so a generic form that would nest with a NOP
    pattern poisons *itself* rather than shadowing the NOP — the
    decoder matches NOP patterns before generic forms, and the trie
    walk must agree with it.
    """
    for length, pattern in sorted(_NOP_BYTES.items()):
        if _insert_form(bytes(pattern), 0, 0) is None:
            raise RuntimeError(
                f"NOP pattern of length {length} conflicts with the "
                "form trie; the columnar core cannot mirror the decoder")


_install_nops()


def _form_split(instr: Instruction) -> Tuple[int, int, int]:
    """``(form_len, disp_len, imm_len)`` of *instr*'s encoding.

    Mirrors the byte layout the decoder consumes:
    ``[prefixes][REX|VEX][escapes][opcode][ModRM][SIB][disp][imm]`` —
    displacement and immediate are always the trailing bytes, so the
    form is a prefix of the encoding.

    Raises:
        _FormLayoutError: the structural parse disagrees with the
            template arithmetic (never observed; the caller falls back
            to an exact-raw leaf).
    """
    raw = instr.raw
    enc = instr.template.encoding
    if enc.fixed_bytes is not None:
        return len(raw), 0, 0
    imm_len = enc.imm_width // 8 if enc.imm_width else 0
    if enc.modrm is None:
        form_len = len(raw) - imm_len
        if form_len <= 0:
            raise _FormLayoutError(instr.template.name)
        return form_len, 0, imm_len
    i = instr.opcode_offset
    if raw[i] in (0xC4, 0xC5):
        i += 3 if raw[i] == 0xC4 else 2
    elif raw[i] == 0x0F:
        i += 1
        if raw[i] in (0x38, 0x3A):
            i += 1
    i += 1  # the opcode byte
    modrm = raw[i]
    i += 1
    mod, rm = modrm >> 6, modrm & 7
    disp_len = 0
    if mod == 0b11:
        disp_len = 0
    elif mod == 0b00 and rm == 0b101:
        disp_len = 4
    elif rm == 0b100:
        sib = raw[i]
        i += 1
        if mod == 0b00:
            disp_len = 4 if (sib & 7) == 0b101 else 0
        elif mod == 0b01:
            disp_len = 1
        else:
            disp_len = 4
    elif mod == 0b01:
        disp_len = 1
    elif mod == 0b10:
        disp_len = 4
    if i + disp_len + imm_len != len(raw):
        raise _FormLayoutError(instr.template.name)
    return i, disp_len, imm_len


def _leaf_for_instruction(instr: Instruction) -> _SigItem:
    """The signature component of a decoded instruction.

    Inserts the instruction's form into the trie on first sight and
    registers the instruction as the representative of its signature.
    Poisoned or unsplittable forms degrade to an exact-raw leaf.
    """
    raw = instr.raw
    leaf: Optional[_Leaf] = None
    try:
        form_len, disp_len, imm_len = _form_split(instr)
    except _FormLayoutError:
        form_len = disp_len = imm_len = -1
    if form_len > 0:
        form = raw[:form_len]
        known = _FORM_INDEX.get(form)
        if known is None:
            leaf = _insert_form(form, disp_len, imm_len)
        elif known is not _POISONED:
            leaf = known  # type: ignore[assignment]
            if (leaf.disp_len, leaf.imm_len) != (disp_len, imm_len):
                leaf = None  # inconsistent split: fall back (defensive)
    if leaf is None:
        leaf = _RAW_LEAVES.get(raw)
        if leaf is None:
            leaf = _Leaf(len(raw), 0, 0)
            _RAW_LEAVES[raw] = leaf
        key: _SigItem = (leaf, True)
    else:
        mem = instr.mem_operand()
        key = (leaf, mem is None or mem.disp == 0)
    _REP_INSTRS.setdefault(key, instr)
    return key


def _walk(raw: bytes, offset: int) -> Optional[_SigItem]:
    """Trie walk: the signature component of the instruction at
    *offset*, or ``None`` when the form is not (yet) in the trie.

    The leaf set is prefix-free, so the first leaf on the path is the
    unique candidate; its slice lengths recover the payload bytes.
    """
    node = _TRIE_ROOT
    i = offset
    end = len(raw)
    while True:
        leaf = node.leaf
        if leaf is not None:
            if offset + leaf.length > end:
                return None
            if leaf.disp_len:
                start = offset + leaf.form_len
                disp_zero = not any(raw[start:start + leaf.disp_len])
            else:
                disp_zero = True
            return leaf, disp_zero
        if i >= end:
            return None
        node = node.children.get(raw[i])
        if node is None:
            return None
        i += 1


def _rep_for(raw: bytes, offset: int, key: _SigItem) -> Instruction:
    """The representative instruction of *key*, decoding the bytes at
    *offset* on first sight (decode errors propagate, exactly as
    ``BasicBlock.from_bytes`` would raise them)."""
    rep = _REP_INSTRS.get(key)
    if rep is None:
        rep, _ = decode(raw, offset)
        rep = _REP_INSTRS.setdefault(key, rep)
    return rep


def _reset_global_tables() -> None:
    """Drop every process-wide table and reinstall the NOPs (tests)."""
    _TRIE_ROOT.children.clear()
    _TRIE_ROOT.leaf = None
    _FORM_INDEX.clear()
    _RAW_LEAVES.clear()
    _REP_INSTRS.clear()
    _install_nops()


# ---------------------------------------------------------------------------
# Compiled block entries
# ---------------------------------------------------------------------------

class _BlockEntry:
    """One compiled block signature: columns + memoized bound pieces."""

    __slots__ = ("sig", "block", "analyzed", "ops", "lengths",
                 "opcode_offsets", "lcp_mask", "num_bytes", "fused_col",
                 "issued_col", "n_fused", "n_issued", "port_counts",
                 "dec", "ports", "ports_critical", "precedence", "jcc",
                 "predec", "protos", "error")

    def __init__(self, sig: Signature):
        self.sig = sig
        self.block: Optional[BasicBlock] = None
        self.analyzed = None
        self.ops = None
        self.n_fused: Optional[int] = None
        self.n_issued: Optional[int] = None
        self.port_counts: Optional[Counter] = None
        self.dec: Optional[Fraction] = None
        self.ports: Optional[PortsResult] = None
        self.ports_critical: Optional[List[int]] = None
        self.precedence: Optional[PrecedenceResult] = None
        self.jcc: Optional[bool] = None
        self.predec: Dict[ThroughputMode, Fraction] = {}
        self.protos: Dict[ThroughputMode, Prediction] = {}
        self.error: Optional[BaseException] = None


def _predec_total(lengths: np.ndarray, opcode_offsets: np.ndarray,
                  lcp_mask: np.ndarray, num_bytes: int, width: int,
                  unroll: int) -> int:
    """Vectorized Predec cycle total over *unroll* block copies.

    Exact-integer numpy mirror of
    :func:`repro.core.predecoder.predec_bound`: per-16-byte-block
    ``L``/``O``/``LCP`` event counts via ``bincount``, ceil-divided
    cycles, and the wrap-around LCP penalty chain via ``roll``.
    """
    offsets = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(lengths)[:-1]))
    starts = (np.arange(unroll, dtype=np.int64)[:, None] * num_bytes
              + offsets[None, :])
    opcode_blocks = ((starts + opcode_offsets[None, :]) // _BLOCK).ravel()
    last_blocks = ((starts + lengths[None, :] - 1) // _BLOCK).ravel()
    n_blocks = -((-unroll * num_bytes) // _BLOCK)
    counts_l = np.bincount(last_blocks, minlength=n_blocks)
    crossing = opcode_blocks != last_blocks
    counts_o = np.bincount(opcode_blocks[crossing], minlength=n_blocks)
    counts_lcp = np.bincount(opcode_blocks[np.tile(lcp_mask, unroll)],
                             minlength=n_blocks)
    cycles = -(-(counts_l + counts_o) // width)
    prev = np.roll(cycles, 1)  # block 0 wraps to block n-1 (steady state)
    penalty = np.maximum(0, 3 * counts_lcp - np.maximum(0, prev - 1))
    return int((cycles + penalty).sum())


class ColumnarCore:
    """Template-compiled predictor, bit-for-bit equal to ``Facile``.

    Accepts the same variant knobs as :class:`~repro.core.model.Facile`
    (``simple_predec`` / ``simple_dec`` / ``components`` / ``exclude``),
    so every engine configuration can route through it.  Entries are
    held per core instance (one core serves one µarch + variant) in an
    LRU of *max_entries*; the form trie and representative-instruction
    table are shared process-wide.

    Attributes:
        raw_hits / sig_hits / misses: lookup counters — a ``sig_hit``
            is the headline event: a never-seen raw block resolved to
            an already-compiled signature entry.
    """

    def __init__(self, cfg: MicroArchConfig, *,
                 simple_predec: bool = False,
                 simple_dec: bool = False,
                 components: Optional[Iterable[Component]] = None,
                 exclude: Iterable[Component] = (),
                 db: Optional[UopsDatabase] = None,
                 max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.cfg = cfg
        self.db = db if db is not None else UopsDatabase(cfg)
        self.simple_predec = simple_predec
        self.simple_dec = simple_dec
        base = frozenset(components) if components is not None \
            else _ALL_COMPONENTS
        self.enabled: FrozenSet[Component] = base - frozenset(exclude)
        self.max_entries = max_entries
        self._entries: "OrderedDict[Signature, _BlockEntry]" = OrderedDict()
        self._by_raw: "OrderedDict[bytes, _BlockEntry]" = OrderedDict()
        self.raw_hits = 0
        self.sig_hits = 0
        self.misses = 0

    # -- entry resolution ----------------------------------------------

    def _remember(self, store: OrderedDict, key, entry) -> None:
        while len(store) >= self.max_entries:
            store.popitem(last=False)
        store[key] = entry

    def _entry_for_sig(self, sig: Signature,
                       instructions: Sequence[Instruction],
                       ) -> _BlockEntry:
        entry = self._entries.get(sig)
        if entry is not None:
            self.sig_hits += 1
            self._entries.move_to_end(sig)
            return entry
        self.misses += 1
        entry = _BlockEntry(sig)
        try:
            block = BasicBlock(list(instructions))
            entry.block = block
            entry.analyzed = analyze_block(block, self.cfg, self.db)
            entry.ops = macro_ops(entry.analyzed, self.cfg)
            entry.lengths = np.array([i.length for i in block],
                                     dtype=np.int64)
            entry.opcode_offsets = np.array(
                [i.opcode_offset for i in block], dtype=np.int64)
            entry.lcp_mask = np.array([i.has_lcp for i in block],
                                      dtype=bool)
            entry.num_bytes = block.num_bytes
            entry.fused_col = np.array(
                [op.info.fused_uops for op in entry.ops], dtype=np.int64)
            entry.issued_col = np.array(
                [op.info.issued_uops for op in entry.ops], dtype=np.int64)
        except Exception as exc:
            # Signature-deterministic (unsupported template on this
            # µarch, degenerate memory operand, empty block): replay
            # the same failure for every block sharing the signature,
            # exactly as the object path re-raises per call.
            entry.error = exc
        self._remember(self._entries, sig, entry)
        return entry

    def _entry_for_block(self, block: BasicBlock) -> _BlockEntry:
        sig = tuple(_leaf_for_instruction(instr) for instr in block)
        return self._entry_for_sig(sig, block.instructions)

    def _entry_for_raw(self, raw: bytes) -> _BlockEntry:
        sig: List[_SigItem] = []
        offset = 0
        end = len(raw)
        while offset < end:
            item = _walk(raw, offset)
            if item is None:
                # Unknown form: decode the block once; this also
                # inserts every new form for later raw-path hits.
                return self._entry_for_block(BasicBlock.from_bytes(raw))
            sig.append(item)
            offset += item[0].length
        key = tuple(sig)
        entry = self._entries.get(key)
        if entry is not None:
            self.sig_hits += 1
            self._entries.move_to_end(key)
            return entry
        reps: List[Instruction] = []
        offset = 0
        for item in key:
            reps.append(_rep_for(raw, offset, item))
            offset += item[0].length
        return self._entry_for_sig(key, reps)

    def _resolve_block(self, block: BasicBlock) -> _BlockEntry:
        raw = block.raw
        entry = self._by_raw.get(raw)
        if entry is not None:
            self.raw_hits += 1
            self._by_raw.move_to_end(raw)
            return entry
        entry = self._entry_for_block(block)
        self._remember(self._by_raw, raw, entry)
        return entry

    def _resolve_raw(self, raw: bytes) -> _BlockEntry:
        entry = self._by_raw.get(raw)
        if entry is not None:
            self.raw_hits += 1
            self._by_raw.move_to_end(raw)
            return entry
        entry = self._entry_for_raw(raw)
        self._remember(self._by_raw, raw, entry)
        return entry

    # -- batched column compilation ------------------------------------

    def _compile(self, entries: Sequence[_BlockEntry]) -> None:
        """Batch-reduce the µop-count columns of fresh entries.

        One concatenated numpy pass (``np.add.reduceat`` over segment
        starts) computes every entry's fused/issued µop totals — the
        inputs of the Issue, DSB, and LSD bounds — instead of one
        Python reduction per block.
        """
        fresh: List[_BlockEntry] = []
        seen = set()
        for entry in entries:
            if (entry.error is None and entry.n_fused is None
                    and id(entry) not in seen):
                seen.add(id(entry))
                fresh.append(entry)
        if not fresh:
            return
        fused = np.concatenate([e.fused_col for e in fresh])
        issued = np.concatenate([e.issued_col for e in fresh])
        sizes = np.array([len(e.fused_col) for e in fresh])
        starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(sizes)[:-1]))
        n_fused = np.add.reduceat(fused, starts)
        n_issued = np.add.reduceat(issued, starts)
        for entry, nf, ni in zip(fresh, n_fused, n_issued):
            entry.n_fused = int(nf)
            entry.n_issued = int(ni)

    # -- memoized per-entry bound pieces -------------------------------

    def _uop_totals(self, entry: _BlockEntry) -> Tuple[int, int]:
        if entry.n_fused is None:
            self._compile([entry])
        return entry.n_fused, entry.n_issued  # type: ignore[return-value]

    def _predec_bound(self, entry: _BlockEntry,
                      mode: ThroughputMode) -> Fraction:
        bound = entry.predec.get(mode)
        if bound is None:
            if self.simple_predec:
                bound = Fraction(entry.num_bytes, _BLOCK)
            else:
                unroll = (1 if mode is ThroughputMode.LOOP
                          else math.lcm(entry.num_bytes, _BLOCK)
                          // entry.num_bytes)
                total = _predec_total(
                    entry.lengths, entry.opcode_offsets, entry.lcp_mask,
                    entry.num_bytes, self.cfg.predecode_width, unroll)
                bound = Fraction(total, unroll)
            entry.predec[mode] = bound
        return bound

    def _dec_bound(self, entry: _BlockEntry) -> Fraction:
        if entry.dec is None:
            entry.dec = (simple_dec_bound(entry.ops, self.cfg)
                         if self.simple_dec
                         else dec_bound(entry.ops, self.cfg))
        return entry.dec

    def _dsb_bound(self, entry: _BlockEntry) -> Fraction:
        n_fused, _ = self._uop_totals(entry)
        width = self.cfg.dsb_width
        if entry.num_bytes < 32:
            return Fraction(-(-n_fused // width))
        return Fraction(n_fused, width)

    def _lsd_bound(self, entry: _BlockEntry) -> Fraction:
        n_fused, _ = self._uop_totals(entry)
        unroll = lsd_unroll_count(n_fused, self.cfg)
        return Fraction(-(-(n_fused * unroll) // self.cfg.issue_width),
                        unroll)

    def _ports_result(self, entry: _BlockEntry) -> PortsResult:
        if entry.ports is None:
            if entry.port_counts is None:
                counts: Counter = Counter()
                for op in entry.ops:
                    for ports in op.info.port_sets:
                        counts[ports] += 1
                entry.port_counts = counts
            entry.ports = ports_bound_counts(entry.port_counts)
        return entry.ports

    def _ports_critical(self, entry: _BlockEntry) -> List[int]:
        if entry.ports_critical is None:
            entry.ports_critical = critical_instructions(
                entry.ops, self._ports_result(entry))
        return entry.ports_critical

    def _precedence_result(self, entry: _BlockEntry) -> PrecedenceResult:
        if entry.precedence is None:
            entry.precedence = precedence_bound(entry.block, self.db)
        return entry.precedence

    def _jcc_affected(self, entry: _BlockEntry) -> bool:
        if entry.jcc is None:
            entry.jcc = affected_by_jcc_erratum(entry.block, self.cfg,
                                                entry.analyzed)
        return entry.jcc

    # -- prediction assembly -------------------------------------------

    def _make_proto(self, entry: _BlockEntry,
                    mode: ThroughputMode) -> Prediction:
        """The full prediction of (entry, mode) — built once, copied out
        per call.  Mirrors ``Facile.predict`` clause for clause,
        including the bounds-dict insertion order."""
        bounds: Dict[Component, Fraction] = {}
        ports_detail: Optional[PortsResult] = None
        precedence_detail: Optional[PrecedenceResult] = None
        ports_critical: List[int] = []

        relevant = (UNROLLED_COMPONENTS
                    if mode is ThroughputMode.UNROLLED
                    else LOOP_COMPONENTS)
        active = [c for c in relevant if c in self.enabled]

        if Component.PREDEC in active:
            bounds[Component.PREDEC] = self._predec_bound(entry, mode)
        if Component.DEC in active:
            bounds[Component.DEC] = self._dec_bound(entry)
        if Component.DSB in active:
            bounds[Component.DSB] = self._dsb_bound(entry)
        if Component.LSD in active:
            bounds[Component.LSD] = self._lsd_bound(entry)
        if Component.ISSUE in active:
            _, n_issued = self._uop_totals(entry)
            bounds[Component.ISSUE] = Fraction(n_issued,
                                               self.cfg.issue_width)
        if Component.PORTS in active:
            ports_detail = self._ports_result(entry)
            ports_critical = self._ports_critical(entry)
            bounds[Component.PORTS] = ports_detail.bound
        if Component.PRECEDENCE in active:
            precedence_detail = self._precedence_result(entry)
            bounds[Component.PRECEDENCE] = precedence_detail.bound

        jcc_affected = (mode is ThroughputMode.LOOP
                        and self._jcc_affected(entry))
        n_fused, _ = self._uop_totals(entry)
        lsd_applicable = (mode is ThroughputMode.LOOP
                          and self.cfg.lsd_enabled
                          and n_fused <= self.cfg.idq_size)

        tp, fe, bottlenecks = _combine(bounds, mode, self.enabled,
                                       jcc_affected, lsd_applicable)
        return Prediction(
            throughput=tp, mode=mode, bounds=bounds,
            bottlenecks=bottlenecks, fe_component=fe,
            jcc_affected=jcc_affected, lsd_applicable=lsd_applicable,
            ports_detail=ports_detail,
            precedence_detail=precedence_detail,
            critical_instruction_indices=_critical_indices(
                bottlenecks, ports_critical, precedence_detail),
            ports_critical_indices=ports_critical,
        )

    def _predict_entry(self, entry: _BlockEntry,
                       mode: ThroughputMode) -> Prediction:
        if entry.error is not None:
            raise entry.error
        proto = entry.protos.get(mode)
        if proto is None:
            proto = self._make_proto(entry, mode)
            entry.protos[mode] = proto
        # Fresh containers per call (callers may mutate), shared frozen
        # detail payloads — matching what the object path hands out.
        return Prediction(
            throughput=proto.throughput, mode=proto.mode,
            bounds=dict(proto.bounds),
            bottlenecks=list(proto.bottlenecks),
            fe_component=proto.fe_component,
            jcc_affected=proto.jcc_affected,
            lsd_applicable=proto.lsd_applicable,
            ports_detail=proto.ports_detail,
            precedence_detail=proto.precedence_detail,
            critical_instruction_indices=list(
                proto.critical_instruction_indices),
            ports_critical_indices=proto.ports_critical_indices,
        )

    # -- public API ----------------------------------------------------

    def predict(self, block: BasicBlock,
                mode: ThroughputMode) -> Prediction:
        """Predict one (decoded) block — drop-in for ``Facile.predict``."""
        return self._predict_entry(self._resolve_block(block), mode)

    def predict_many(self, blocks: Iterable[BasicBlock],
                     mode: ThroughputMode) -> List[Prediction]:
        """Predict a batch; fresh entries' columns reduce in one numpy
        pass — drop-in for ``Facile.predict_many``."""
        entries = [self._resolve_block(block) for block in blocks]
        self._compile(entries)
        return [self._predict_entry(entry, mode) for entry in entries]

    def predict_raw(self, raw: bytes, mode: ThroughputMode) -> Prediction:
        """Predict straight from block bytes.

        On a warm trie this never builds instruction objects: the walk
        yields the signature, the compiled entry supplies the result.
        Decode errors propagate exactly as ``BasicBlock.from_bytes``
        would raise them.
        """
        return self._predict_entry(self._resolve_raw(raw), mode)

    def predict_raw_many(self, raws: Iterable[bytes],
                         mode: ThroughputMode) -> List[Prediction]:
        """Batched :meth:`predict_raw` with one columnar reduce pass."""
        entries = [self._resolve_raw(raw) for raw in raws]
        self._compile(entries)
        return [self._predict_entry(entry, mode) for entry in entries]

    def stats(self) -> Dict[str, int]:
        """Lookup counters plus the compiled-entry population."""
        return {
            "entries": len(self._entries),
            "raw_hits": self.raw_hits,
            "sig_hits": self.sig_hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        """Drop this core's compiled entries (counters are kept).

        The process-wide form trie and representative table are shared
        with other cores and stay; tests that need a cold trie use
        ``_reset_global_tables``.
        """
        self._entries.clear()
        self._by_raw.clear()
