"""Time/size-windowed micro-batching onto :meth:`Engine.predict_many`.

The prediction service accepts requests from many concurrent clients,
but the engine's fast path is a *batch* call: one thread walking a list
of blocks through the shared :class:`~repro.engine.cache.AnalysisCache`
(or fanning it out over the worker pool).  :class:`MicroBatcher`
bridges the two worlds:

* client threads :meth:`submit` single ``(block, mode)`` requests and
  receive a :class:`concurrent.futures.Future`;
* one dispatcher thread drains the queue in windows — a batch closes as
  soon as it holds ``max_batch`` requests *or* ``max_wait_ms`` elapsed
  since the window opened, whichever comes first — groups the window by
  mode, and resolves each group with one ``Engine.predict_many`` call.

Because the dispatcher is the only thread that touches the engine, the
(unsynchronized) analysis cache is never accessed concurrently, and the
predictions handed back are exactly what a serial
``Engine.predict_many`` over the same blocks would return — batching
changes latency and throughput, never results.

Overload behavior (see ``docs/ROBUSTNESS.md``):

* the queue is **bounded** when ``max_queue`` is set: a submit that
  would exceed it raises :class:`QueueFullError` immediately (the
  service turns this into ``429`` + ``Retry-After``) instead of letting
  latency grow without bound;
* requests may carry a **deadline** (a ``time.monotonic`` timestamp).
  A request whose deadline passed while it queued is dropped at
  dispatch time — its future fails with :class:`DeadlineExceeded`
  (HTTP 504) and, crucially, no engine time is spent on work nobody is
  waiting for anymore.
"""

from __future__ import annotations

import inspect
import math
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.components import ThroughputMode
from repro.core.model import Prediction
from repro.isa.block import BasicBlock
from repro.obs import metrics
from repro.obs.trace import Span
from repro.robustness.errors import DeadlineExceeded, QueueFullError

#: Default batching window (requests / milliseconds).
DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_WAIT_MS = 5.0

#: One queued request: block, mode, future, optional deadline, and the
#: trace id of the originating request (``None`` outside the service).
_Entry = Tuple[BasicBlock, ThroughputMode, Future, Optional[float],
               Optional[str]]

_WINDOW_SIZE = metrics.histogram(
    "facile_batch_window_size",
    metrics.METRIC_CATALOG["facile_batch_window_size"][1],
    labels=("uarch",), buckets=metrics.SIZE_BUCKETS)


class MicroBatcher:
    """Merge concurrent single-block requests into engine batch calls.

    Args:
        engine: any object with a ``predict_many(blocks, mode)`` method
            (normally a :class:`~repro.engine.engine.Engine`).
        max_batch: maximum requests per dispatch window (>= 1).
        max_wait_ms: how long an open window waits for more requests
            before dispatching what it has.  ``0`` dispatches eagerly —
            useful in tests that want deterministic single-request
            batches.
        max_queue: bound on queued (not yet dispatched) requests;
            ``None`` keeps the queue unbounded (the pre-robustness
            behavior).  Submits beyond the bound shed load by raising
            :class:`QueueFullError`.
        obs_label: when set (the service passes its µarch abbrev),
            dispatched window sizes are observed into the
            ``facile_batch_window_size`` histogram and each engine call
            is timed as a ``batcher.dispatch`` span.  ``None`` (the
            default) keeps the batcher entirely unobserved — library
            and test use adds no metrics work.

    Use as a context manager or call :meth:`close`; submitting to a
    closed batcher raises :class:`RuntimeError`, while requests already
    queued at close time are still dispatched (graceful drain) so no
    client is left hanging.
    """

    def __init__(self, engine, *, max_batch: int = DEFAULT_MAX_BATCH,
                 max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
                 max_queue: Optional[int] = None,
                 obs_label: Optional[str] = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 or None")
        self.engine = engine
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self.obs_label = obs_label
        # Feature-detect once whether the backend accepts per-block
        # trace ids (ShardEngine does, a plain Engine does not), so
        # dispatch never pays a try/except per window.
        try:
            self._engine_accepts_traces = "traces" in inspect.signature(
                engine.predict_many).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            self._engine_accepts_traces = False
        self._lock = threading.Lock()
        self._pending_cond = threading.Condition(self._lock)
        self._pending: List[_Entry] = []
        self._closed = False
        # Lifetime statistics (surfaced at the service's /stats).
        self.requests = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_seen = 0
        self.shed = 0
        self.deadline_drops = 0
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-microbatcher",
            daemon=True)
        self._dispatcher.start()

    # -- client side ---------------------------------------------------

    def retry_after(self) -> float:
        """A polite ``Retry-After`` suggestion (seconds) when shedding:
        roughly how long the current backlog takes to drain in full
        windows, never less than one second."""
        with self._lock:
            backlog = len(self._pending)
        windows = math.ceil(max(1, backlog) / self.max_batch)
        return float(max(1, math.ceil(
            windows * (self.max_wait_ms / 1000.0))))

    def submit(self, block: BasicBlock, mode: ThroughputMode,
               deadline: Optional[float] = None,
               trace: Optional[str] = None) -> "Future[Prediction]":
        """Enqueue one prediction request; resolves to a ``Prediction``.

        Args:
            deadline: optional ``time.monotonic`` timestamp; if it
                passes before the request is dispatched, the future
                fails with :class:`DeadlineExceeded` instead of
                occupying the engine.
            trace: optional trace id of the originating request, carried
                to the engine backend when it accepts one.
        """
        futures = self._submit_all([(block, mode, deadline, trace)])
        return futures[0]

    def submit_many(self, blocks: Sequence[BasicBlock],
                    mode: ThroughputMode,
                    deadline: Optional[float] = None,
                    trace: Optional[str] = None
                    ) -> List["Future[Prediction]"]:
        """Enqueue many requests atomically; one future per block.

        Admission is all-or-nothing against ``max_queue`` (the whole
        group is shed with :class:`QueueFullError` rather than
        half-enqueued).  This is the non-blocking sibling of
        :meth:`predict_many`, used by the async service front-end to
        await batched predictions without tying up a thread per bulk.
        """
        return self._submit_all([(block, mode, deadline, trace)
                                 for block in blocks])

    def _submit_all(self, requests: Sequence[Tuple[BasicBlock,
                                                   ThroughputMode,
                                                   Optional[float],
                                                   Optional[str]]]
                    ) -> List["Future[Prediction]"]:
        """Admit *requests* atomically: either the queue takes them
        all, or none and :class:`QueueFullError` — a bulk request is
        never half-enqueued when the service sheds it with a 429."""
        with self._pending_cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            if (self.max_queue is not None
                    and len(self._pending) + len(requests)
                    > self.max_queue):
                self.shed += len(requests)
                backlog = len(self._pending)
                raise QueueFullError(
                    f"admission queue full ({backlog} queued, "
                    f"bound {self.max_queue}); retry later",
                    retry_after=max(1.0, math.ceil(
                        math.ceil(max(1, backlog) / self.max_batch)
                        * (self.max_wait_ms / 1000.0))))
            futures: List["Future[Prediction]"] = []
            for block, mode, deadline, trace in requests:
                future: "Future[Prediction]" = Future()
                self._pending.append((block, mode, future, deadline,
                                      trace))
                futures.append(future)
            self.requests += len(requests)
            self._pending_cond.notify()
            return futures

    def predict(self, block: BasicBlock, mode: ThroughputMode,
                timeout: Optional[float] = None,
                deadline: Optional[float] = None) -> Prediction:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(block, mode,
                           deadline=deadline).result(timeout=timeout)

    def predict_many(self, blocks: Sequence[BasicBlock],
                     mode: ThroughputMode,
                     timeout: Optional[float] = None,
                     deadline: Optional[float] = None
                     ) -> List[Prediction]:
        """Submit a bulk request and wait for all of its predictions.

        Each block rides the shared batching queue individually, so
        bulk requests from different clients merge into common windows;
        admission is all-or-nothing against ``max_queue``.  Results
        preserve input order.
        """
        futures = self._submit_all(
            [(block, mode, deadline, None) for block in blocks])
        return [future.result(timeout=timeout) for future in futures]

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc_value, trace) -> None:
        self.close()

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting requests, drain the queue, stop dispatching.

        Requests enqueued before the close are still dispatched; new
        :meth:`submit` calls raise immediately.
        """
        with self._pending_cond:
            if self._closed:
                return
            self._closed = True
            self._pending_cond.notify_all()
        self._dispatcher.join(timeout=timeout)

    # -- dispatcher side -----------------------------------------------

    def _take_window(self) -> List[_Entry]:
        """Block until a window is ready, then claim its requests.

        Returns an empty list exactly once, when the batcher closes.
        """
        with self._pending_cond:
            while not self._pending and not self._closed:
                self._pending_cond.wait()
            if self._pending and not self._closed:
                # Window open: wait for it to fill or to time out.
                remaining = self.max_wait_ms / 1000.0
                while (len(self._pending) < self.max_batch
                       and remaining > 0 and not self._closed):
                    start = time.monotonic()
                    self._pending_cond.wait(timeout=remaining)
                    remaining -= time.monotonic() - start
            window = self._pending[:self.max_batch]
            del self._pending[:len(window)]
            return window

    def _dispatch_loop(self) -> None:
        # _take_window keeps handing out windows after close() until
        # the queue is drained (submit() already refuses new entries),
        # so an empty window means: drained and closed — exit.
        while True:
            window = self._take_window()
            if not window:
                break
            self._dispatch(window)

    def _dispatch(self, window: List[_Entry]) -> None:
        """Resolve one window with one engine call per mode group."""
        if not window:  # a window that closed empty: nothing to do
            return
        # Shed requests that expired while queued: nobody is waiting
        # for them anymore, so they must not occupy the engine.
        now = time.monotonic()
        live: List[_Entry] = []
        for entry in window:
            deadline = entry[3]
            if deadline is not None and now >= deadline:
                self.deadline_drops += 1
                future = entry[2]
                if not future.done():
                    future.set_exception(DeadlineExceeded(
                        "deadline passed while queued for dispatch"))
            else:
                live.append(entry)
        if not live:
            return
        self.batches += 1
        self.batched_requests += len(live)
        self.max_batch_seen = max(self.max_batch_seen, len(live))
        if self.obs_label is not None:
            _WINDOW_SIZE.observe(len(live), uarch=self.obs_label)
        groups: Dict[ThroughputMode,
                     List[Tuple[BasicBlock, Future, Optional[str]]]] = {}
        for block, mode, future, _, trace in live:
            groups.setdefault(mode, []).append((block, future, trace))
        for mode, entries in groups.items():
            blocks = [block for block, _, _ in entries]
            try:
                if self._engine_accepts_traces:
                    traces = [trace for _, _, trace in entries]
                    if self.obs_label is not None:
                        with Span("batcher.dispatch"):
                            predictions = self.engine.predict_many(
                                blocks, mode, traces=traces)
                    else:
                        predictions = self.engine.predict_many(
                            blocks, mode, traces=traces)
                elif self.obs_label is not None:
                    with Span("batcher.dispatch"):
                        predictions = self.engine.predict_many(blocks,
                                                               mode)
                else:
                    predictions = self.engine.predict_many(blocks, mode)
            except Exception as exc:  # pragma: no cover - engine failure
                for _, future, _ in entries:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (_, future, _), prediction in zip(entries, predictions):
                if not future.done():
                    future.set_result(prediction)

    # -- introspection -------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently queued (admitted, not yet dispatched)."""
        with self._lock:
            return len(self._pending)

    @property
    def saturated(self) -> bool:
        """Whether the bounded queue is currently at capacity."""
        if self.max_queue is None:
            return False
        return self.queue_depth >= self.max_queue

    @property
    def mean_batch_size(self) -> float:
        """Average requests per dispatched window (0.0 before traffic)."""
        return (self.batched_requests / self.batches
                if self.batches else 0.0)

    def stats(self) -> Dict[str, float]:
        """A JSON-ready snapshot of the batching counters."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_batch_seen": self.max_batch_seen,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "max_queue": self.max_queue,
            "shed": self.shed,
            "deadline_drops": self.deadline_drops,
        }
