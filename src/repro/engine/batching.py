"""Time/size-windowed micro-batching onto :meth:`Engine.predict_many`.

The prediction service accepts requests from many concurrent clients,
but the engine's fast path is a *batch* call: one thread walking a list
of blocks through the shared :class:`~repro.engine.cache.AnalysisCache`
(or fanning it out over the worker pool).  :class:`MicroBatcher`
bridges the two worlds:

* client threads :meth:`submit` single ``(block, mode)`` requests and
  receive a :class:`concurrent.futures.Future`;
* one dispatcher thread drains the queue in windows — a batch closes as
  soon as it holds ``max_batch`` requests *or* ``max_wait_ms`` elapsed
  since the window opened, whichever comes first — groups the window by
  mode, and resolves each group with one ``Engine.predict_many`` call.

Because the dispatcher is the only thread that touches the engine, the
(unsynchronized) analysis cache is never accessed concurrently, and the
predictions handed back are exactly what a serial
``Engine.predict_many`` over the same blocks would return — batching
changes latency and throughput, never results.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.components import ThroughputMode
from repro.core.model import Prediction
from repro.isa.block import BasicBlock

#: Default batching window (requests / milliseconds).
DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_WAIT_MS = 5.0


class MicroBatcher:
    """Merge concurrent single-block requests into engine batch calls.

    Args:
        engine: any object with a ``predict_many(blocks, mode)`` method
            (normally a :class:`~repro.engine.engine.Engine`).
        max_batch: maximum requests per dispatch window (>= 1).
        max_wait_ms: how long an open window waits for more requests
            before dispatching what it has.  ``0`` dispatches eagerly —
            useful in tests that want deterministic single-request
            batches.

    Use as a context manager or call :meth:`close`; submitting to a
    closed batcher raises :class:`RuntimeError`, while requests already
    queued at close time are still dispatched (graceful drain) so no
    client is left hanging.
    """

    def __init__(self, engine, *, max_batch: int = DEFAULT_MAX_BATCH,
                 max_wait_ms: float = DEFAULT_MAX_WAIT_MS):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.engine = engine
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self._lock = threading.Lock()
        self._pending_cond = threading.Condition(self._lock)
        self._pending: List[Tuple[BasicBlock, ThroughputMode, Future]] = []
        self._closed = False
        # Lifetime statistics (surfaced at the service's /stats).
        self.requests = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_seen = 0
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-microbatcher",
            daemon=True)
        self._dispatcher.start()

    # -- client side ---------------------------------------------------

    def submit(self, block: BasicBlock,
               mode: ThroughputMode) -> "Future[Prediction]":
        """Enqueue one prediction request; resolves to a ``Prediction``."""
        future: "Future[Prediction]" = Future()
        with self._pending_cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._pending.append((block, mode, future))
            self.requests += 1
            self._pending_cond.notify()
        return future

    def predict(self, block: BasicBlock, mode: ThroughputMode,
                timeout: Optional[float] = None) -> Prediction:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(block, mode).result(timeout=timeout)

    def predict_many(self, blocks: Sequence[BasicBlock],
                     mode: ThroughputMode,
                     timeout: Optional[float] = None) -> List[Prediction]:
        """Submit a bulk request and wait for all of its predictions.

        Each block rides the shared batching queue individually, so
        bulk requests from different clients merge into common windows.
        Results preserve input order.
        """
        futures = [self.submit(block, mode) for block in blocks]
        return [future.result(timeout=timeout) for future in futures]

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc_value, trace) -> None:
        self.close()

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting requests, drain the queue, stop dispatching.

        Requests enqueued before the close are still dispatched; new
        :meth:`submit` calls raise immediately.
        """
        with self._pending_cond:
            if self._closed:
                return
            self._closed = True
            self._pending_cond.notify_all()
        self._dispatcher.join(timeout=timeout)

    # -- dispatcher side -----------------------------------------------

    def _take_window(self) -> List[Tuple[BasicBlock, ThroughputMode,
                                         Future]]:
        """Block until a window is ready, then claim its requests.

        Returns an empty list exactly once, when the batcher closes.
        """
        with self._pending_cond:
            while not self._pending and not self._closed:
                self._pending_cond.wait()
            if self._pending and not self._closed:
                # Window open: wait for it to fill or to time out.
                remaining = self.max_wait_ms / 1000.0
                while (len(self._pending) < self.max_batch
                       and remaining > 0 and not self._closed):
                    start = time.monotonic()
                    self._pending_cond.wait(timeout=remaining)
                    remaining -= time.monotonic() - start
            window = self._pending[:self.max_batch]
            del self._pending[:len(window)]
            return window

    def _dispatch_loop(self) -> None:
        # _take_window keeps handing out windows after close() until
        # the queue is drained (submit() already refuses new entries),
        # so an empty window means: drained and closed — exit.
        while True:
            window = self._take_window()
            if not window:
                break
            self._dispatch(window)

    def _dispatch(self, window) -> None:
        """Resolve one window with one engine call per mode group."""
        if not window:  # a window that closed empty: nothing to do
            return
        self.batches += 1
        self.batched_requests += len(window)
        self.max_batch_seen = max(self.max_batch_seen, len(window))
        groups: Dict[ThroughputMode, List[Tuple[BasicBlock, Future]]] = {}
        for block, mode, future in window:
            groups.setdefault(mode, []).append((block, future))
        for mode, entries in groups.items():
            try:
                predictions = self.engine.predict_many(
                    [block for block, _ in entries], mode)
            except Exception as exc:  # pragma: no cover - engine failure
                for _, future in entries:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (_, future), prediction in zip(entries, predictions):
                if not future.done():
                    future.set_result(prediction)

    # -- introspection -------------------------------------------------

    @property
    def mean_batch_size(self) -> float:
        """Average requests per dispatched window (0.0 before traffic)."""
        return (self.batched_requests / self.batches
                if self.batches else 0.0)

    def stats(self) -> Dict[str, float]:
        """A JSON-ready snapshot of the batching counters."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_batch_seen": self.max_batch_seen,
            "mean_batch_size": round(self.mean_batch_size, 2),
        }
