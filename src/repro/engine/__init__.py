"""Batch prediction engine: shared analysis cache + parallel evaluation.

The engine has three layers (see the module docstrings for details):

* :mod:`repro.engine.cache` — :class:`BlockAnalysis` objects memoized per
  (block-signature, µarch), shared by every model/predictor that shares a
  uops database;
* :mod:`repro.engine.engine` — :class:`Engine`, the batch front end with
  a serial fast path and an opt-in ``multiprocessing`` pool shipping
  compact picklable payloads to workers;
* :mod:`repro.engine.columnar` — :class:`ColumnarCore`, the
  template-compiled prediction core (the engine's default), bit-for-bit
  equal to the :class:`~repro.core.model.Facile` object model;
* :mod:`repro.engine.batching` — :class:`MicroBatcher`, the time/size-
  windowed queue that merges concurrent single-block requests (the
  prediction service's traffic) into ``Engine.predict_many`` calls;
* :mod:`repro.engine.bench` — the performance-regression harness behind
  ``benchmarks/perf/`` and ``scripts/bench.py``.

``Engine``, ``MicroBatcher``, and the bench helpers are exposed lazily
because they build on :mod:`repro.core.model`, which itself imports the
cache layer from this package.
"""

from repro.engine.cache import AnalysisCache, BlockAnalysis

__all__ = [
    "ALL_MODES",
    "AnalysisCache",
    "BlockAnalysis",
    "ColumnarCore",
    "Engine",
    "MicroBatcher",
    "ModelSpec",
    "default_workers",
    "resolve_core",
    "set_default_workers",
]

_LAZY = {
    "Engine": "repro.engine.engine",
    "ModelSpec": "repro.engine.engine",
    "ALL_MODES": "repro.engine.engine",
    "default_workers": "repro.engine.engine",
    "set_default_workers": "repro.engine.engine",
    "MicroBatcher": "repro.engine.batching",
    "ColumnarCore": "repro.engine.columnar",
    "resolve_core": "repro.engine.columnar",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is not None:
        import importlib
        return getattr(importlib.import_module(module), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
