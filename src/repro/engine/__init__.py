"""Batch prediction engine: shared analysis cache + parallel evaluation.

The engine has three layers (see the module docstrings for details):

* :mod:`repro.engine.cache` — :class:`BlockAnalysis` objects memoized per
  (block-signature, µarch), shared by every model/predictor that shares a
  uops database;
* :mod:`repro.engine.engine` — :class:`Engine`, the batch front end with
  a serial fast path and an opt-in ``multiprocessing`` pool shipping
  compact picklable payloads to workers;
* :mod:`repro.engine.bench` — the performance-regression harness behind
  ``benchmarks/perf/`` and ``scripts/bench.py``.

``Engine`` (and the bench helpers) are exposed lazily because they build
on :mod:`repro.core.model`, which itself imports the cache layer from
this package.
"""

from repro.engine.cache import AnalysisCache, BlockAnalysis

__all__ = [
    "ALL_MODES",
    "AnalysisCache",
    "BlockAnalysis",
    "Engine",
    "ModelSpec",
    "default_workers",
    "set_default_workers",
]

_LAZY = ("Engine", "ModelSpec", "ALL_MODES", "default_workers",
         "set_default_workers")


def __getattr__(name):
    if name in _LAZY:
        from repro.engine import engine as _engine
        return getattr(_engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
