"""The batch prediction engine (caching + batching + parallelism).

:class:`Engine` makes whole-suite evaluation the first-class fast path:

* the **serial fast path** routes every prediction through a shared
  :class:`~repro.engine.cache.AnalysisCache`, so repeated evaluation of a
  suite (ablation sweeps, counterfactuals, figure regeneration) derives
  each block's analysis once;
* the **opt-in parallel path** fans a batch out over a
  ``multiprocessing`` pool.  Following AnICA's ``PredictorManager``
  design, tasks are compact, cheaply picklable payloads — the model
  *specification* plus ``(index, raw block bytes)`` — and every worker
  process owns its private :class:`~repro.uops.database.UopsDatabase`
  and analysis cache.  Results are merged deterministically by index,
  so serial and parallel runs return identical prediction lists.

Workers rebuild blocks with ``BasicBlock.from_bytes``; because the
analysis cache keys on the raw byte signature, a round-tripped block is
analyzed identically to the original, which keeps parallel predictions
byte-identical to the serial path.

The parallel path is **fault-tolerant** (see ``docs/ROBUSTNESS.md``):
chunks are dispatched with per-task deadlines, a chunk that produces no
result within its deadline is treated as lost (dead or hung worker), the
pool is respawned and the chunk's tasks are requeued — individually, so
an innocent chunk-mate of a poisonous task cannot be starved.  Retries
are bounded (``max_task_retries``); a task that exhausts them resolves
to a typed :class:`~repro.robustness.errors.PredictorError` in its
result slot (``on_error="record"``) or raises
:class:`~repro.robustness.errors.EngineTaskError` (the default).  Tasks
that failed with a crash or an exception get one final in-process
attempt, which keeps recovered results byte-identical to a serial run.
The :mod:`repro.robustness.faults` harness can deterministically inject
worker kills, hangs, and exceptions into this path (site
``engine.task``) to prove all of the above in tier-1 tests.

Select the worker count with ``n_workers``:

* ``None`` — use the process-wide default (``set_default_workers`` /
  the ``REPRO_ENGINE_WORKERS`` environment variable; serial if unset);
* ``0`` — one worker per CPU;
* ``k > 0`` — exactly *k* workers.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.components import Component, ThroughputMode
from repro.core.model import Facile, Prediction
from repro.engine.cache import AnalysisCache
from repro.engine.columnar import ColumnarCore, resolve_core
from repro.isa.block import BasicBlock
from repro.obs import log as obslog
from repro.obs import metrics
from repro.robustness.errors import EngineTaskError, PredictorError
from repro.robustness.faults import act_in_worker, active_plan
from repro.uarch import uarch_by_name
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase

#: Both throughput notions, in evaluation order.
ALL_MODES = (ThroughputMode.UNROLLED, ThroughputMode.LOOP)

# Recovery events as process-wide counters (docs/OBSERVABILITY.md).
# Only the cold recovery paths touch these — never per-block work, so
# the columnar hot path stays uninstrumented.
_POOL_RESPAWNS = metrics.counter(
    "facile_engine_pool_respawns_total",
    metrics.METRIC_CATALOG["facile_engine_pool_respawns_total"][1])
_TASKS_RETRIED = metrics.counter(
    "facile_engine_tasks_retried_total",
    metrics.METRIC_CATALOG["facile_engine_tasks_retried_total"][1])

#: Fault-injection site of the parallel dispatch (one draw per task).
TASK_SITE = "engine.task"
#: Fault-injection site of parallel oracle measurements.
MEASURE_SITE = "engine.measure"

#: Per-task deadline applied when a fault plan is active but no
#: explicit ``task_timeout`` was configured: injection without a
#: deadline could hang forever, which is exactly what the harness
#: exists to rule out.
DEFAULT_FAULTED_TIMEOUT = 10.0

#: A merged batch entry: a prediction, or a typed failure slot.
PredictResult = Union[Prediction, PredictorError]


def _env_workers() -> Optional[int]:
    raw = os.environ.get("REPRO_ENGINE_WORKERS", "").strip().lower()
    if raw in ("", "none", "serial"):
        return None
    try:
        workers = int(raw)
    except ValueError:
        workers = -1
    if workers < 0:
        # Runs at import time: fall back to serial rather than crash
        # every command, including those that never use workers.
        import warnings
        warnings.warn(
            f"ignoring invalid REPRO_ENGINE_WORKERS={raw!r} "
            "(expected an int >= 0, 'none', or 'serial'); running serial")
        return None
    return workers


_DEFAULT_WORKERS: Optional[int] = _env_workers()


def default_workers() -> Optional[int]:
    """The process-wide default worker count (None means serial)."""
    return _DEFAULT_WORKERS


def set_default_workers(n_workers: Optional[int]) -> None:
    """Set the default worker count used by engines created afterwards."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = n_workers


@dataclass(frozen=True)
class ModelSpec:
    """A picklable description of a Facile variant.

    This is what travels to worker processes instead of a live model:
    rebuilding the model from the spec inside the worker (with the
    worker's own database and cache) is cheap, while pickling a model
    would drag the whole µarch configuration and caches along.

    Components are stored by value (strings) to keep the payload small
    and stable under pickling.  ``core`` names the prediction core the
    worker should build (``"object"`` = the Facile object model,
    ``"columnar"`` = :class:`~repro.engine.columnar.ColumnarCore`);
    both cores produce bit-for-bit identical predictions.
    """

    uarch: str
    simple_predec: bool = False
    simple_dec: bool = False
    components: Optional[Tuple[str, ...]] = None
    exclude: Tuple[str, ...] = ()
    core: str = "object"

    def build(self, db: Optional[UopsDatabase] = None,
              cache: Optional[AnalysisCache] = None) -> Facile:
        """Instantiate the described model (the object-model reference)."""
        cfg = uarch_by_name(self.uarch)
        components = (None if self.components is None
                      else {Component(v) for v in self.components})
        return Facile(cfg, db=db, cache=cache,
                      simple_predec=self.simple_predec,
                      simple_dec=self.simple_dec,
                      components=components,
                      exclude={Component(v) for v in self.exclude})

    def build_predictor(self, db: Optional[UopsDatabase] = None,
                        cache: Optional[AnalysisCache] = None):
        """Instantiate the described prediction core (per ``core``)."""
        if self.core != "columnar":
            return self.build(db=db, cache=cache)
        cfg = uarch_by_name(self.uarch)
        components = (None if self.components is None
                      else {Component(v) for v in self.components})
        return ColumnarCore(cfg, db=db,
                            simple_predec=self.simple_predec,
                            simple_dec=self.simple_dec,
                            components=components,
                            exclude={Component(v) for v in self.exclude})


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------

#: Per-process predictor memo: each worker builds one predictor (Facile
#: or ColumnarCore per the spec, with its own database and caches) per
#: distinct spec and reuses it for the whole batch.
_WORKER_MODELS: Dict[ModelSpec, object] = {}

#: Per-process databases for measurement tasks (one per µarch).
_WORKER_DBS: Dict[str, UopsDatabase] = {}

#: A predict payload: spec, batch index, raw bytes, mode, encoded fault.
_Task = Tuple[ModelSpec, int, bytes, str, Optional[Tuple[str, float]]]

#: A chunk result entry: (index, ok, prediction-or-error-text).
_ChunkEntry = Tuple[int, bool, object]


def _predict_chunk(tasks: Sequence[_Task]) -> List[_ChunkEntry]:
    """Predict a chunk of compact payloads inside a worker process.

    Each task is isolated: an exception (injected or real) becomes a
    per-task error entry instead of poisoning the chunk.  A
    ``worker_kill`` fault exits the process without returning — the
    parent sees a lost chunk, which is the point.
    """
    out: List[_ChunkEntry] = []
    for spec, index, raw, mode_value, fault in tasks:
        try:
            if fault is not None:
                act_in_worker(fault, TASK_SITE)
            model = _WORKER_MODELS.get(spec)
            if model is None:
                model = spec.build_predictor()
                _WORKER_MODELS[spec] = model
            block = BasicBlock.from_bytes(raw)
            out.append(
                (index, True, model.predict(block,
                                            ThroughputMode(mode_value))))
        except Exception as exc:
            out.append((index, False, f"{type(exc).__name__}: {exc}"))
    return out


def _measure_task(task) -> Tuple[int, float]:
    """Run the oracle simulator on one compact payload in a worker."""
    from repro.sim.measure import measure

    abbrev, index, raw, mode_value, fault = task
    if fault is not None:
        act_in_worker(fault, MEASURE_SITE)
    db = _WORKER_DBS.get(abbrev)
    if db is None:
        db = UopsDatabase(uarch_by_name(abbrev))
        _WORKER_DBS[abbrev] = db
    block = BasicBlock.from_bytes(raw)
    return index, measure(block, db.cfg, ThroughputMode(mode_value), db)


def _pool_context():
    """Prefer fork (cheap, shares the imported package); fall back to the
    platform default where fork is unavailable."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class Engine:
    """Batch prediction engine for one Facile variant on one µarch.

    Args:
        cfg: the target microarchitecture (must be a registered one when
            the parallel path is used, so workers can rebuild it by name).
        db / cache: optionally shared database and analysis cache.
        n_workers: parallelism (see module docstring).
        chunksize: payloads per pool task on the parallel path.
        task_timeout: per-task deadline in seconds on the parallel path
            (``None`` = wait forever, unless a fault plan is active, in
            which case :data:`DEFAULT_FAULTED_TIMEOUT` applies).  A
            chunk that misses its deadline is treated as lost to a dead
            or hung worker: the pool is respawned and the tasks are
            requeued.
        max_task_retries: how many times a lost or failed task is
            redispatched before its slot degrades to a
            :class:`PredictorError` (``on_error="record"``) or raises
            :class:`EngineTaskError` (``on_error="raise"``).
        simple_predec / simple_dec / components / exclude: the Facile
            variant, as in :class:`~repro.core.model.Facile`.
        core: the prediction core — ``"columnar"`` (the compiled fast
            path, :class:`~repro.engine.columnar.ColumnarCore`) or
            ``"object"`` (the Facile object-model reference).  Both are
            bit-for-bit identical; ``None`` resolves via
            ``REPRO_ENGINE_CORE``, default ``columnar``.  The object
            core is the one that populates ``self.cache`` (the analysis
            cache) — callers that depend on its counters or on the
            persistent cache layer (the service tier) pin
            ``core="object"``.

    The engine can be used as a context manager; ``close()`` shuts the
    worker pool down.

    The engine itself is not thread-safe; concurrent callers should go
    through :class:`repro.engine.MicroBatcher` (as the prediction
    service does), which funnels all traffic into one dispatcher
    thread.
    """

    def __init__(self, cfg: MicroArchConfig, *,
                 db: Optional[UopsDatabase] = None,
                 cache: Optional[AnalysisCache] = None,
                 n_workers: Optional[int] = None,
                 chunksize: int = 16,
                 task_timeout: Optional[float] = None,
                 max_task_retries: int = 2,
                 simple_predec: bool = False,
                 simple_dec: bool = False,
                 components: Optional[Iterable[Component]] = None,
                 exclude: Iterable[Component] = (),
                 core: Optional[str] = None):
        self.cfg = cfg
        self.core = resolve_core(core)
        self.spec = ModelSpec(
            uarch=cfg.abbrev,
            simple_predec=simple_predec,
            simple_dec=simple_dec,
            components=(None if components is None
                        else tuple(sorted(c.value for c in components))),
            exclude=tuple(sorted(c.value for c in exclude)),
            core=self.core,
        )
        self.db = db or UopsDatabase(cfg)
        self.cache = cache if cache is not None \
            else AnalysisCache.shared(self.db)
        self.model = Facile(
            cfg, db=self.db, cache=self.cache,
            simple_predec=simple_predec, simple_dec=simple_dec,
            components=components, exclude=exclude)
        if self.core == "columnar":
            self.columnar: Optional[ColumnarCore] = ColumnarCore(
                cfg, db=self.db,
                simple_predec=simple_predec, simple_dec=simple_dec,
                components=components, exclude=exclude)
            self.predictor = self.columnar
        else:
            self.columnar = None
            self.predictor = self.model
        self.n_workers = (n_workers if n_workers is not None
                          else default_workers())
        if self.n_workers is not None and self.n_workers < 0:
            raise ValueError(
                "n_workers must be >= 0 (0 = one per CPU, None = serial)")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be > 0 seconds or None")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        self.chunksize = max(1, chunksize)
        self.task_timeout = task_timeout
        self.max_task_retries = max_task_retries
        # Recovery counters (surfaced by the service's /stats).
        self.tasks_retried = 0
        self.pool_respawns = 0
        self.tasks_failed = 0
        self._pool = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc_value, trace) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Shut the worker pool down and mark the engine closed.

        Idempotent: a second ``close()`` (or ``__del__`` after an
        explicit close) is a no-op.  A closed engine still serves the
        serial path, but will refuse to spawn a fresh pool — respawn
        recovery goes through :meth:`_shutdown_pool` precisely so it
        does not resurrect pools on engines the owner already closed.
        """
        self._shutdown_pool()
        self._closed = True

    def _shutdown_pool(self) -> None:
        """Terminate the pool if one is live (leaves ``closed`` alone)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    @property
    def parallel(self) -> bool:
        """Whether batches will be fanned out over a worker pool."""
        return self.n_workers is not None

    def _ensure_pool(self):
        if self._closed:
            raise RuntimeError(
                "Engine is closed; create a new Engine for parallel work")
        if self._pool is None:
            n = self.n_workers
            if n == 0:
                n = os.cpu_count() or 1
            if uarch_by_name(self.cfg.abbrev) != self.cfg:
                raise ValueError(
                    f"parallel prediction requires a registered µarch; "
                    f"{self.cfg.abbrev!r} does not match the registry")
            self._pool = _pool_context().Pool(n)
        return self._pool

    def _respawn_pool(self) -> None:
        """Kill the pool (hung workers included) for a fresh one."""
        self.pool_respawns += 1
        _POOL_RESPAWNS.inc()
        self._shutdown_pool()

    def _effective_timeout(self) -> Optional[float]:
        if self.task_timeout is not None:
            return self.task_timeout
        return (DEFAULT_FAULTED_TIMEOUT if active_plan() is not None
                else None)

    # -- prediction ----------------------------------------------------

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> Prediction:
        """Predict one block (always in-process, cached)."""
        return self.predictor.predict(block, mode)

    def predict_many(self, blocks: Sequence[BasicBlock],
                     mode: ThroughputMode, *,
                     on_error: str = "raise",
                     traces: Optional[Sequence[Optional[str]]] = None
                     ) -> List[PredictResult]:
        """Predict a whole batch, preserving input order.

        Serial unless the engine was configured with workers; both paths
        return identical predictions (the parallel merge is by index,
        and recovered tasks are re-predicted in-process when the pool
        cannot produce them).

        Args:
            on_error: ``"raise"`` (default) propagates a task's final
                failure as :class:`EngineTaskError` (serial path: the
                original exception); ``"record"`` degrades the failing
                task's result slot to a :class:`PredictorError` and
                keeps every other slot intact.
            traces: optional per-block trace ids from the service front
                end — logged at debug level for request joining, never
                touched otherwise (predictions cannot depend on them).
        """
        if on_error not in ("raise", "record"):
            raise ValueError("on_error must be 'raise' or 'record'")
        blocks = list(blocks)
        if not blocks:
            return []
        if traces is not None and obslog.level_enabled("debug"):
            obslog.get_logger("engine").debug(
                "predict_many", n_blocks=len(blocks), mode=mode.value,
                traces=sorted({t for t in traces if t}))
        if not self.parallel or len(blocks) == 1:
            if on_error == "raise":
                return self.predictor.predict_many(blocks, mode)
            results: List[PredictResult] = []
            for index, block in enumerate(blocks):
                try:
                    results.append(self.predictor.predict(block, mode))
                except Exception as exc:
                    self.tasks_failed += 1
                    results.append(PredictorError(
                        kind="exception",
                        detail=f"{type(exc).__name__}: {exc}",
                        attempts=1, index=index))
            return results
        return self._predict_parallel(blocks, mode, on_error)

    # -- the fault-tolerant parallel path ------------------------------

    def _predict_parallel(self, blocks: Sequence[BasicBlock],
                          mode: ThroughputMode,
                          on_error: str) -> List[PredictResult]:
        plan = active_plan()
        payloads: List[List] = []
        for index, block in enumerate(blocks):
            fault = plan.check(TASK_SITE) if plan is not None else None
            payloads.append([self.spec, index, block.raw, mode.value,
                             fault.encode() if fault is not None
                             else None])
        results: List[Optional[PredictResult]] = [None] * len(blocks)
        attempts = [0] * len(blocks)
        pending = list(range(len(blocks)))
        first_round = True
        while pending:
            timeout = self._effective_timeout()
            pool = self._ensure_pool()
            # First round: normal chunking.  Retry rounds: one task per
            # chunk, so blame is precise and an innocent chunk-mate of
            # a hung task cannot burn through its own retry budget.
            size = self.chunksize if first_round else 1
            chunks = [pending[i:i + size]
                      for i in range(0, len(pending), size)]
            handles = [
                (chunk, pool.apply_async(
                    _predict_chunk,
                    ([tuple(payloads[j]) for j in chunk],)))
                for chunk in chunks
            ]
            requeue: List[int] = []
            respawn = False
            for chunk, handle in handles:
                budget = (None if timeout is None
                          else timeout * len(chunk))
                try:
                    entries = handle.get(budget)
                except multiprocessing.TimeoutError:
                    respawn = True
                    self._absorb_lost_chunk(
                        chunk, "timeout", "no result within "
                        f"{budget:.1f}s (dead or hung worker)",
                        blocks, mode, on_error, attempts, requeue,
                        results, payloads)
                    continue
                except Exception as exc:
                    # The pool itself failed (broken pipe, worker
                    # crashed while unpickling, ...).
                    respawn = True
                    self._absorb_lost_chunk(
                        chunk, "worker_crash",
                        f"{type(exc).__name__}: {exc}",
                        blocks, mode, on_error, attempts, requeue,
                        results, payloads)
                    continue
                for index, ok, payload in entries:
                    attempts[index] += 1
                    if ok:
                        results[index] = payload
                    else:
                        self._absorb_task_failure(
                            index, "exception", str(payload), blocks,
                            mode, on_error, attempts, requeue, results,
                            payloads)
            if respawn:
                self._respawn_pool()
            pending = requeue
            first_round = False
        return results  # type: ignore[return-value]

    def _absorb_lost_chunk(self, chunk, kind, detail, blocks, mode,
                           on_error, attempts, requeue, results,
                           payloads) -> None:
        """Every task of a lost chunk: count the attempt, then requeue
        or finalize."""
        for index in chunk:
            attempts[index] += 1
            self._absorb_task_failure(
                index, kind, detail, blocks, mode, on_error, attempts,
                requeue, results, payloads)

    def _absorb_task_failure(self, index, kind, detail, blocks, mode,
                             on_error, attempts, requeue, results,
                             payloads) -> None:
        """One task failed once (attempt already counted): requeue it
        (fault cleared) while retries remain, else finalize its slot."""
        if attempts[index] <= self.max_task_retries:
            payloads[index][4] = None  # injected faults fire once
            self.tasks_retried += 1
            _TASKS_RETRIED.inc()
            requeue.append(index)
            return
        if kind != "timeout":
            # Crashes and exceptions get one final in-process attempt:
            # a transient worker death must not surface as a failure
            # when the block itself is fine — this is what keeps
            # recovered batches byte-identical to serial runs.  (A
            # *timed-out* task is excluded: re-running code that just
            # hung a worker could hang the parent.)
            try:
                results[index] = self.predictor.predict(blocks[index], mode)
                return
            except Exception as exc:
                kind = "exception"
                detail = f"{type(exc).__name__}: {exc}"
                if on_error == "raise":
                    raise
        self.tasks_failed += 1
        error = PredictorError(kind=kind, detail=detail,
                               attempts=attempts[index], index=index)
        if on_error == "raise":
            raise EngineTaskError(error)
        results[index] = error

    def predict_suite(self, suite, modes: Optional[Sequence[ThroughputMode]]
                      = None) -> Dict[ThroughputMode, List[Prediction]]:
        """Predict every benchmark of a suite under each mode.

        The suite's benchmarks provide ``block(loop)`` variants (BHiveU /
        BHiveL), matching how the evaluation layer consumes them.
        """
        modes = list(modes) if modes is not None else list(ALL_MODES)
        out: Dict[ThroughputMode, List[Prediction]] = {}
        for mode in modes:
            loop = mode is ThroughputMode.LOOP
            out[mode] = self.predict_many(
                [bench.block(loop) for bench in suite], mode)
        return out


def measure_many(cfg: MicroArchConfig, blocks: Sequence[BasicBlock],
                 mode: ThroughputMode, *, n_workers: int,
                 chunksize: int = 4,
                 task_timeout: Optional[float] = None) -> List[float]:
    """Oracle-simulator measurements of a batch, over a worker pool.

    The measurement side of suite evaluation is by far its slowest part
    (cycle-level simulation); this fans it out the same way as
    :meth:`Engine.predict_many` — compact ``(index, raw bytes)``
    payloads, per-worker databases, deterministic merge by index.

    The process-wide measurement cache of :mod:`repro.sim.measure` is
    consulted first and refilled with the workers' results, so repeated
    suite evaluations stay free regardless of which path measured them.

    Fault tolerance: the pool path is best-effort.  If the pool dies,
    hangs past *task_timeout* (default: forever; 10 s under an active
    fault plan), or raises, every measurement it failed to deliver is
    computed serially in-process — serial and parallel measurements are
    identical by construction, so recovery never changes results.
    """
    from repro.sim.measure import cached_measurement, measure, \
        store_measurement

    if n_workers < 0:
        raise ValueError("n_workers must be >= 0 (0 = one per CPU)")
    blocks = list(blocks)
    if not blocks:
        return []
    if uarch_by_name(cfg.abbrev) != cfg:
        raise ValueError(
            f"parallel measurement requires a registered µarch; "
            f"{cfg.abbrev!r} does not match the registry")
    if n_workers == 0:
        n_workers = os.cpu_count() or 1

    plan = active_plan()
    if task_timeout is None and plan is not None:
        task_timeout = DEFAULT_FAULTED_TIMEOUT

    results: List[Optional[float]] = [
        cached_measurement(block, cfg, mode) for block in blocks]
    tasks = []
    for index, block in enumerate(blocks):
        if results[index] is not None:
            continue
        fault = plan.check(MEASURE_SITE) if plan is not None else None
        tasks.append((cfg.abbrev, index, block.raw, mode.value,
                      fault.encode() if fault is not None else None))
    if tasks:
        pool = _pool_context().Pool(n_workers)
        try:
            iterator = pool.imap_unordered(_measure_task, tasks,
                                           chunksize=max(1, chunksize))
            for _ in range(len(tasks)):
                try:
                    index, cycles = (iterator.next(task_timeout)
                                     if task_timeout is not None
                                     else next(iterator))
                except StopIteration:  # pragma: no cover - defensive
                    break
                except Exception:
                    # Timeout, dead worker, injected exception — stop
                    # trusting the pool; the serial fallback below
                    # computes whatever is still missing.
                    break
                results[index] = cycles
                store_measurement(blocks[index], cfg, mode, cycles)
        finally:
            pool.terminate()
            pool.join()
    if any(value is None for value in results):
        db = UopsDatabase(cfg)
        for index, value in enumerate(results):
            if value is None:
                cycles = measure(blocks[index], cfg, mode, db)
                results[index] = cycles
                store_measurement(blocks[index], cfg, mode, cycles)
    return results  # type: ignore[return-value]
