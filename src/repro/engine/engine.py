"""The batch prediction engine (caching + batching + parallelism).

:class:`Engine` makes whole-suite evaluation the first-class fast path:

* the **serial fast path** routes every prediction through a shared
  :class:`~repro.engine.cache.AnalysisCache`, so repeated evaluation of a
  suite (ablation sweeps, counterfactuals, figure regeneration) derives
  each block's analysis once;
* the **opt-in parallel path** fans a batch out over a
  ``multiprocessing`` pool.  Following AnICA's ``PredictorManager``
  design, tasks are compact, cheaply picklable payloads — the model
  *specification* plus ``(index, raw block bytes)`` — and every worker
  process owns its private :class:`~repro.uops.database.UopsDatabase`
  and analysis cache.  Results are merged deterministically by index,
  so serial and parallel runs return identical prediction lists.

Workers rebuild blocks with ``BasicBlock.from_bytes``; because the
analysis cache keys on the raw byte signature, a round-tripped block is
analyzed identically to the original, which keeps parallel predictions
byte-identical to the serial path.

Select the worker count with ``n_workers``:

* ``None`` — use the process-wide default (``set_default_workers`` /
  the ``REPRO_ENGINE_WORKERS`` environment variable; serial if unset);
* ``0`` — one worker per CPU;
* ``k > 0`` — exactly *k* workers.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.components import Component, ThroughputMode
from repro.core.model import Facile, Prediction
from repro.engine.cache import AnalysisCache
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase

#: Both throughput notions, in evaluation order.
ALL_MODES = (ThroughputMode.UNROLLED, ThroughputMode.LOOP)


def _env_workers() -> Optional[int]:
    raw = os.environ.get("REPRO_ENGINE_WORKERS", "").strip().lower()
    if raw in ("", "none", "serial"):
        return None
    try:
        workers = int(raw)
    except ValueError:
        workers = -1
    if workers < 0:
        # Runs at import time: fall back to serial rather than crash
        # every command, including those that never use workers.
        import warnings
        warnings.warn(
            f"ignoring invalid REPRO_ENGINE_WORKERS={raw!r} "
            "(expected an int >= 0, 'none', or 'serial'); running serial")
        return None
    return workers


_DEFAULT_WORKERS: Optional[int] = _env_workers()


def default_workers() -> Optional[int]:
    """The process-wide default worker count (None means serial)."""
    return _DEFAULT_WORKERS


def set_default_workers(n_workers: Optional[int]) -> None:
    """Set the default worker count used by engines created afterwards."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = n_workers


@dataclass(frozen=True)
class ModelSpec:
    """A picklable description of a Facile variant.

    This is what travels to worker processes instead of a live model:
    rebuilding the model from the spec inside the worker (with the
    worker's own database and cache) is cheap, while pickling a model
    would drag the whole µarch configuration and caches along.

    Components are stored by value (strings) to keep the payload small
    and stable under pickling.
    """

    uarch: str
    simple_predec: bool = False
    simple_dec: bool = False
    components: Optional[Tuple[str, ...]] = None
    exclude: Tuple[str, ...] = ()

    def build(self, db: Optional[UopsDatabase] = None,
              cache: Optional[AnalysisCache] = None) -> Facile:
        """Instantiate the described model."""
        cfg = uarch_by_name(self.uarch)
        components = (None if self.components is None
                      else {Component(v) for v in self.components})
        return Facile(cfg, db=db, cache=cache,
                      simple_predec=self.simple_predec,
                      simple_dec=self.simple_dec,
                      components=components,
                      exclude={Component(v) for v in self.exclude})


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------

#: Per-process model memo: each worker builds one Facile (with its own
#: database and analysis cache) per distinct spec and reuses it for the
#: whole batch.
_WORKER_MODELS: Dict[ModelSpec, Facile] = {}

#: Per-process databases for measurement tasks (one per µarch).
_WORKER_DBS: Dict[str, UopsDatabase] = {}

_Task = Tuple[ModelSpec, int, bytes, str]


def _predict_task(task: _Task) -> Tuple[int, Prediction]:
    """Predict one compact payload inside a worker process."""
    spec, index, raw, mode_value = task
    model = _WORKER_MODELS.get(spec)
    if model is None:
        model = spec.build()
        _WORKER_MODELS[spec] = model
    block = BasicBlock.from_bytes(raw)
    return index, model.predict(block, ThroughputMode(mode_value))


def _measure_task(task: Tuple[str, int, bytes, str]) -> Tuple[int, float]:
    """Run the oracle simulator on one compact payload in a worker."""
    from repro.sim.measure import measure

    abbrev, index, raw, mode_value = task
    db = _WORKER_DBS.get(abbrev)
    if db is None:
        db = UopsDatabase(uarch_by_name(abbrev))
        _WORKER_DBS[abbrev] = db
    block = BasicBlock.from_bytes(raw)
    return index, measure(block, db.cfg, ThroughputMode(mode_value), db)


def _pool_context():
    """Prefer fork (cheap, shares the imported package); fall back to the
    platform default where fork is unavailable."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class Engine:
    """Batch prediction engine for one Facile variant on one µarch.

    Args:
        cfg: the target microarchitecture (must be a registered one when
            the parallel path is used, so workers can rebuild it by name).
        db / cache: optionally shared database and analysis cache.
        n_workers: parallelism (see module docstring).
        chunksize: payloads per pool task on the parallel path.
        simple_predec / simple_dec / components / exclude: the Facile
            variant, as in :class:`~repro.core.model.Facile`.

    The engine can be used as a context manager; ``close()`` shuts the
    worker pool down.

    The engine itself is not thread-safe; concurrent callers should go
    through :class:`repro.engine.MicroBatcher` (as the prediction
    service does), which funnels all traffic into one dispatcher
    thread.
    """

    def __init__(self, cfg: MicroArchConfig, *,
                 db: Optional[UopsDatabase] = None,
                 cache: Optional[AnalysisCache] = None,
                 n_workers: Optional[int] = None,
                 chunksize: int = 16,
                 simple_predec: bool = False,
                 simple_dec: bool = False,
                 components: Optional[Iterable[Component]] = None,
                 exclude: Iterable[Component] = ()):
        self.cfg = cfg
        self.spec = ModelSpec(
            uarch=cfg.abbrev,
            simple_predec=simple_predec,
            simple_dec=simple_dec,
            components=(None if components is None
                        else tuple(sorted(c.value for c in components))),
            exclude=tuple(sorted(c.value for c in exclude)),
        )
        self.db = db or UopsDatabase(cfg)
        self.cache = cache if cache is not None \
            else AnalysisCache.shared(self.db)
        self.model = Facile(
            cfg, db=self.db, cache=self.cache,
            simple_predec=simple_predec, simple_dec=simple_dec,
            components=components, exclude=exclude)
        self.n_workers = (n_workers if n_workers is not None
                          else default_workers())
        if self.n_workers is not None and self.n_workers < 0:
            raise ValueError(
                "n_workers must be >= 0 (0 = one per CPU, None = serial)")
        self.chunksize = max(1, chunksize)
        self._pool = None

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc_value, trace) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Shut the worker pool down (no-op if none was started)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    @property
    def parallel(self) -> bool:
        """Whether batches will be fanned out over a worker pool."""
        return self.n_workers is not None

    def _ensure_pool(self):
        if self._pool is None:
            n = self.n_workers
            if n == 0:
                n = os.cpu_count() or 1
            if uarch_by_name(self.cfg.abbrev) != self.cfg:
                raise ValueError(
                    f"parallel prediction requires a registered µarch; "
                    f"{self.cfg.abbrev!r} does not match the registry")
            self._pool = _pool_context().Pool(n)
        return self._pool

    # -- prediction ----------------------------------------------------

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> Prediction:
        """Predict one block (always in-process, cached)."""
        return self.model.predict(block, mode)

    def predict_many(self, blocks: Sequence[BasicBlock],
                     mode: ThroughputMode) -> List[Prediction]:
        """Predict a whole batch, preserving input order.

        Serial unless the engine was configured with workers; both paths
        return identical predictions (the parallel merge is by index).
        """
        blocks = list(blocks)
        if not blocks:
            return []
        if not self.parallel or len(blocks) == 1:
            return self.model.predict_many(blocks, mode)

        pool = self._ensure_pool()
        tasks: List[_Task] = [
            (self.spec, index, block.raw, mode.value)
            for index, block in enumerate(blocks)
        ]
        results: List[Optional[Prediction]] = [None] * len(blocks)
        for index, prediction in pool.imap_unordered(
                _predict_task, tasks, chunksize=self.chunksize):
            results[index] = prediction
        return results  # type: ignore[return-value]

    def predict_suite(self, suite, modes: Optional[Sequence[ThroughputMode]]
                      = None) -> Dict[ThroughputMode, List[Prediction]]:
        """Predict every benchmark of a suite under each mode.

        The suite's benchmarks provide ``block(loop)`` variants (BHiveU /
        BHiveL), matching how the evaluation layer consumes them.
        """
        modes = list(modes) if modes is not None else list(ALL_MODES)
        out: Dict[ThroughputMode, List[Prediction]] = {}
        for mode in modes:
            loop = mode is ThroughputMode.LOOP
            out[mode] = self.predict_many(
                [bench.block(loop) for bench in suite], mode)
        return out


def measure_many(cfg: MicroArchConfig, blocks: Sequence[BasicBlock],
                 mode: ThroughputMode, *, n_workers: int,
                 chunksize: int = 4) -> List[float]:
    """Oracle-simulator measurements of a batch, over a worker pool.

    The measurement side of suite evaluation is by far its slowest part
    (cycle-level simulation); this fans it out the same way as
    :meth:`Engine.predict_many` — compact ``(index, raw bytes)``
    payloads, per-worker databases, deterministic merge by index.

    The process-wide measurement cache of :mod:`repro.sim.measure` is
    consulted first and refilled with the workers' results, so repeated
    suite evaluations stay free regardless of which path measured them.
    """
    from repro.sim.measure import cached_measurement, store_measurement

    if n_workers < 0:
        raise ValueError("n_workers must be >= 0 (0 = one per CPU)")
    blocks = list(blocks)
    if not blocks:
        return []
    if uarch_by_name(cfg.abbrev) != cfg:
        raise ValueError(
            f"parallel measurement requires a registered µarch; "
            f"{cfg.abbrev!r} does not match the registry")
    if n_workers == 0:
        n_workers = os.cpu_count() or 1

    results: List[Optional[float]] = [
        cached_measurement(block, cfg, mode) for block in blocks]
    tasks = [(cfg.abbrev, index, block.raw, mode.value)
             for index, block in enumerate(blocks)
             if results[index] is None]
    if tasks:
        with _pool_context().Pool(n_workers) as pool:
            for index, cycles in pool.imap_unordered(
                    _measure_task, tasks, chunksize=max(1, chunksize)):
                results[index] = cycles
                store_measurement(blocks[index], cfg, mode, cycles)
    return results  # type: ignore[return-value]
