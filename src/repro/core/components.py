"""Component and mode enumerations shared across the model."""

from __future__ import annotations

import enum


class Component(enum.Enum):
    """The potential bottleneck components of the pipeline model.

    Order matters: when several components induce the same bound, the one
    closest to the front end is reported as *the* bottleneck (the paper's
    convention for Figure 6): Predec > Dec > DSB > LSD > Issue > Ports >
    Precedence.
    """

    PREDEC = "Predec"
    DEC = "Dec"
    DSB = "DSB"
    LSD = "LSD"
    ISSUE = "Issue"
    PORTS = "Ports"
    PRECEDENCE = "Precedence"

    def __str__(self) -> str:
        return self.value


#: Components participating in the TPU bound (paper Eq. 1).
UNROLLED_COMPONENTS = (
    Component.PREDEC, Component.DEC, Component.ISSUE, Component.PORTS,
    Component.PRECEDENCE,
)

#: Components that may participate in the TPL bound (paper Eq. 2/3).
LOOP_COMPONENTS = (
    Component.PREDEC, Component.DEC, Component.DSB, Component.LSD,
    Component.ISSUE, Component.PORTS, Component.PRECEDENCE,
)


class ThroughputMode(enum.Enum):
    """The two throughput notions of §3.1."""

    UNROLLED = "unrolled"  # TPU: block repeated without a branch
    LOOP = "loop"          # TPL: block ends in a branch to its start

    def __str__(self) -> str:
        return self.value
