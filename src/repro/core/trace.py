"""Trace throughput prediction: Facile beyond single basic blocks.

The paper's §7 names handling "more complex code, e.g., involving
branches" as future work.  This module implements the natural first-order
extension: a *trace* is a set of basic blocks with execution frequencies
(e.g. from a profile), and its steady-state cost per trace iteration is
the frequency-weighted sum of per-block throughputs.

The extension stays compositional: per-component cycle attribution is
aggregated across blocks, so the bottleneck report and counterfactual
("what if component X were infinitely fast, across the whole trace")
remain available — the property that makes Facile useful inside
optimizers that operate on whole loops with internal control flow.

Two modeling assumptions, both first-order and documented:

* each block runs in its steady state (transitions between blocks are
  not modeled — reasonable when blocks iterate or frequencies are high);
* branches are predicted correctly (the paper's §3.3 assumption).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.components import Component, ThroughputMode
from repro.core.model import Facile, Prediction
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


@dataclass(frozen=True)
class TraceSegment:
    """One basic block of a trace.

    Attributes:
        block: the basic block.
        frequency: average executions per trace iteration (e.g. 1.0 for
            an always-taken path, 0.5 for one arm of a balanced branch,
            10.0 for an inner loop body running ten times).
        mode: the throughput notion for this block; blocks ending in a
            branch default to loop mode, others to unrolled mode.
        name: optional label for reports.
    """

    block: BasicBlock
    frequency: float = 1.0
    mode: Optional[ThroughputMode] = None
    name: str = ""

    def resolved_mode(self) -> ThroughputMode:
        if self.mode is not None:
            return self.mode
        return (ThroughputMode.LOOP if self.block.ends_in_branch
                else ThroughputMode.UNROLLED)


@dataclass
class TracePrediction:
    """The aggregated prediction for a trace.

    Attributes:
        cycles: predicted cycles per trace iteration.
        segments: (segment, per-block prediction, contributed cycles).
        component_cycles: cycles attributed to each component being the
            per-block bottleneck, aggregated over the trace.
        bottleneck: the component dominating the attribution.
    """

    cycles: float
    segments: List[Tuple[TraceSegment, Prediction, float]]
    component_cycles: Dict[Component, float]
    bottleneck: Optional[Component]

    def idealized_cycles(self, component: Component) -> float:
        """Trace cycles if *component* were infinitely fast everywhere."""
        total = 0.0
        enabled = set(Component) - {component}
        for segment, prediction, _contribution in self.segments:
            ideal = prediction.recombined(enabled)
            if ideal.throughput is not None:
                total += segment.frequency * float(ideal.throughput)
        return total

    def idealized_speedup(self, component: Component) -> Optional[float]:
        ideal = self.idealized_cycles(component)
        if ideal <= 0:
            return None
        return self.cycles / ideal


class TraceFacile:
    """Frequency-weighted Facile over multi-block traces."""

    def __init__(self, cfg: MicroArchConfig,
                 db: Optional[UopsDatabase] = None):
        self.cfg = cfg
        self.model = Facile(cfg, db=db)

    def predict(self, segments: Iterable[TraceSegment]) -> TracePrediction:
        """Predict the cost of one trace iteration.

        Raises:
            ValueError: for empty traces or non-positive frequencies.
        """
        segments = list(segments)
        if not segments:
            raise ValueError("trace must contain at least one segment")
        results: List[Tuple[TraceSegment, Prediction, float]] = []
        component_cycles: Dict[Component, float] = {}
        total = 0.0
        for segment in segments:
            if segment.frequency <= 0:
                raise ValueError(
                    f"segment frequency must be positive, got "
                    f"{segment.frequency}")
            prediction = self.model.predict(segment.block,
                                            segment.resolved_mode())
            contribution = segment.frequency * prediction.cycles
            total += contribution
            results.append((segment, prediction, contribution))
            if prediction.bottlenecks:
                primary = prediction.bottlenecks[0]
                component_cycles[primary] = (
                    component_cycles.get(primary, 0.0) + contribution)
        bottleneck = None
        if component_cycles:
            bottleneck = max(component_cycles, key=component_cycles.get)
        return TracePrediction(
            cycles=round(total, 2),
            segments=results,
            component_cycles=component_cycles,
            bottleneck=bottleneck,
        )

    def predict_branchy_loop(self, prologue: BasicBlock,
                             arms: Sequence[Tuple[BasicBlock, float]],
                             ) -> TracePrediction:
        """Convenience wrapper for a loop with a two-or-more-way branch.

        Args:
            prologue: the part of the body executed every iteration.
            arms: (block, probability) pairs; probabilities should sum to
                one but are used as given.
        """
        segments = [TraceSegment(prologue, 1.0, name="prologue")]
        segments.extend(
            TraceSegment(block, probability, name=f"arm{i}")
            for i, (block, probability) in enumerate(arms))
        return self.predict(segments)
