"""The Facile model: per-component bounds and their combination (§4.1-4.2).

:class:`Facile` computes every relevant component bound for a block and
combines them:

* TPU (unrolled):  ``max{Predec, Dec, Issue, Ports, Precedence}``
* TPL (loop):      ``max{FE, Issue, Ports, Precedence}`` where FE is
  ``max{Predec, Dec}`` under the JCC erratum, the LSD bound when the loop
  fits the IDQ on an LSD-enabled µarch, and the DSB bound otherwise.

Because the model is compositional, the argmax components *are* the
bottleneck report, and ablations ("only X", "without X", simple variants)
are expressed as component subsets — which is also how the counterfactual
analysis (Table 4) is implemented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.core.components import (
    Component,
    LOOP_COMPONENTS,
    ThroughputMode,
    UNROLLED_COMPONENTS,
)
from repro.core.decoder import dec_bound, simple_dec_bound
from repro.core.dsb import dsb_bound
from repro.core.issue import issue_bound
from repro.core.jcc import affected_by_jcc_erratum
from repro.core.lsd import lsd_bound, lsd_fits
from repro.core.ports import PortsResult
from repro.core.precedence import PrecedenceResult
from repro.core.predecoder import predec_bound, simple_predec_bound
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase

_ALL_COMPONENTS = frozenset(Component)


@dataclass
class Prediction:
    """A throughput prediction with its interpretable decomposition.

    Attributes:
        throughput: predicted cycles per iteration (None when every
            relevant component was excluded — only reachable in ablations).
        mode: the throughput notion (TPU or TPL).
        bounds: raw per-component bounds; components that are not
            applicable in this mode are absent.
        bottlenecks: components attaining the predicted throughput,
            front-end-first.
        fe_component: the front-end path used in loop mode.
        jcc_affected: whether the JCC-erratum mitigation applied.
        lsd_applicable: whether the loop fits the LSD.
        ports_detail / precedence_detail: interpretable feedback payloads.
        critical_instruction_indices: instructions responsible for the
            bottleneck (port contenders or the critical dependency chain).
        ports_critical_indices: the instructions that would be critical if
            Ports were the bottleneck; kept regardless of the actual
            bottleneck so recombinations can report critical instructions
            without re-analyzing the block.
    """

    throughput: Optional[Fraction]
    mode: ThroughputMode
    bounds: Dict[Component, Fraction]
    bottlenecks: List[Component]
    fe_component: Optional[Component] = None
    jcc_affected: bool = False
    lsd_applicable: bool = False
    ports_detail: Optional[PortsResult] = None
    precedence_detail: Optional[PrecedenceResult] = None
    critical_instruction_indices: List[int] = field(default_factory=list)
    ports_critical_indices: List[int] = field(default_factory=list)

    @property
    def cycles(self) -> float:
        """The prediction as a float, rounded like the paper (2 digits)."""
        if self.throughput is None:
            return 0.0
        return round(float(self.throughput), 2)

    def recombined(self, enabled: Iterable[Component]) -> "Prediction":
        """The prediction that a Facile restricted to *enabled* components
        would make, reusing the already-computed bounds.

        This is what makes counterfactual reasoning cheap: idealizing a
        component is a recombination, not a re-analysis.
        """
        tp, fe, bottlenecks = _combine(
            self.bounds, self.mode, frozenset(enabled),
            self.jcc_affected, self.lsd_applicable)
        return Prediction(
            throughput=tp, mode=self.mode, bounds=self.bounds,
            bottlenecks=bottlenecks, fe_component=fe,
            jcc_affected=self.jcc_affected,
            lsd_applicable=self.lsd_applicable,
            ports_detail=self.ports_detail,
            precedence_detail=self.precedence_detail,
            critical_instruction_indices=_critical_indices(
                bottlenecks, self.ports_critical_indices,
                self.precedence_detail),
            ports_critical_indices=self.ports_critical_indices,
        )


def _combine(bounds: Dict[Component, Fraction], mode: ThroughputMode,
             enabled: FrozenSet[Component], jcc_affected: bool,
             lsd_applicable: bool):
    """Combine component bounds into a throughput (Eqs. 1-3)."""
    candidates: Dict[Component, Fraction] = {}

    if mode is ThroughputMode.UNROLLED:
        for comp in UNROLLED_COMPONENTS:
            if comp in enabled and comp in bounds:
                candidates[comp] = bounds[comp]
        fe = None
    else:
        fe = None
        if jcc_affected:
            fe_set = {Component.PREDEC, Component.DEC} & enabled
            if fe_set:
                fe = max(fe_set, key=lambda c: bounds[c])
        elif lsd_applicable and Component.LSD in enabled:
            fe = Component.LSD
        elif Component.DSB in enabled:
            fe = Component.DSB
        if fe is not None:
            candidates[fe] = bounds[fe]
            if jcc_affected:
                for comp in ({Component.PREDEC, Component.DEC} & enabled):
                    candidates[comp] = bounds[comp]
        for comp in (Component.ISSUE, Component.PORTS,
                     Component.PRECEDENCE):
            if comp in enabled and comp in bounds:
                candidates[comp] = bounds[comp]

    if not candidates:
        return None, fe, []
    throughput = max(candidates.values())
    bottlenecks = [comp for comp in Component
                   if candidates.get(comp) == throughput]
    return throughput, fe, bottlenecks


def _critical_indices(bottlenecks: List[Component],
                      ports_critical: List[int],
                      precedence_detail: Optional[PrecedenceResult],
                      ) -> List[int]:
    """The critical-instruction report for a combined prediction."""
    if bottlenecks and bottlenecks[0] is Component.PORTS:
        return list(ports_critical)
    if (bottlenecks and bottlenecks[0] is Component.PRECEDENCE
            and precedence_detail is not None):
        return list(precedence_detail.critical_chain)
    return []


class Facile:
    """The analytical throughput predictor.

    Args:
        cfg: the target microarchitecture.
        simple_predec / simple_dec: use the simpler component variants of
            §4.3/§4.4 (the "Facile w/ SimpleX" rows of Table 3).
        components: restrict the model to this component subset (default:
            all) — the "only X" ablations.
        exclude: remove components — the "Facile w/o X" ablations and the
            counterfactual analysis.
        db: optionally share a uops database across predictors.
        cache: optionally share an analysis cache; by default the cache
            attached to *db* is used, so every Facile variant sharing a
            database analyzes each block at most once.
    """

    def __init__(self, cfg: MicroArchConfig, *,
                 simple_predec: bool = False,
                 simple_dec: bool = False,
                 components: Optional[Iterable[Component]] = None,
                 exclude: Iterable[Component] = (),
                 db: Optional[UopsDatabase] = None,
                 cache: Optional["AnalysisCache"] = None):
        # Deferred: repro.core is imported by the engine's cache layer,
        # so the reverse dependency must not be resolved at import time.
        from repro.engine.cache import AnalysisCache
        self.cfg = cfg
        if db is None:
            db = cache.db if cache is not None else UopsDatabase(cfg)
        self.db = db
        self.cache = cache if cache is not None \
            else AnalysisCache.shared(self.db)
        self.simple_predec = simple_predec
        self.simple_dec = simple_dec
        base = frozenset(components) if components is not None \
            else _ALL_COMPONENTS
        self.enabled: FrozenSet[Component] = base - frozenset(exclude)

    # ------------------------------------------------------------------

    def predict(self, block: BasicBlock,
                mode: ThroughputMode) -> Prediction:
        """Predict the throughput of *block* under *mode*.

        Computes every enabled component bound (through the shared
        :class:`~repro.engine.cache.AnalysisCache`, so repeated calls
        on equal-byte blocks reuse the derived analysis) and combines
        them with ``max`` — Eq. 1 for
        :attr:`~repro.core.components.ThroughputMode.UNROLLED`,
        Eqs. 2-3 for
        :attr:`~repro.core.components.ThroughputMode.LOOP`.  The
        returned :class:`Prediction` carries the full interpretable
        decomposition: per-component bounds, the bottleneck set, the
        front-end path taken, and the critical instructions.

        For batches, prefer :meth:`predict_many` or the engine layer
        (:class:`repro.engine.Engine`); for serving concurrent
        callers, the prediction service (``facile serve``) wraps this
        through :class:`repro.engine.MicroBatcher`.
        """
        analysis = self.cache.analysis(block)
        block = analysis.block
        analyzed = analysis.analyzed
        ops = analysis.ops

        bounds: Dict[Component, Fraction] = {}
        ports_detail: Optional[PortsResult] = None
        precedence_detail: Optional[PrecedenceResult] = None
        ports_critical: List[int] = []

        relevant = (UNROLLED_COMPONENTS if mode is ThroughputMode.UNROLLED
                    else LOOP_COMPONENTS)
        active = [c for c in relevant if c in self.enabled]

        if Component.PREDEC in active:
            bounds[Component.PREDEC] = (
                simple_predec_bound(block, self.cfg, mode)
                if self.simple_predec
                else predec_bound(block, self.cfg, mode))
        if Component.DEC in active:
            bounds[Component.DEC] = (
                simple_dec_bound(ops, self.cfg) if self.simple_dec
                else dec_bound(ops, self.cfg))
        if Component.DSB in active:
            bounds[Component.DSB] = dsb_bound(ops, block.num_bytes,
                                              self.cfg)
        if Component.LSD in active:
            bounds[Component.LSD] = lsd_bound(ops, self.cfg)
        if Component.ISSUE in active:
            bounds[Component.ISSUE] = issue_bound(ops, self.cfg)
        if Component.PORTS in active:
            ports_detail = analysis.ports()
            ports_critical = analysis.ports_critical()
            bounds[Component.PORTS] = ports_detail.bound
        if Component.PRECEDENCE in active:
            precedence_detail = analysis.precedence()
            bounds[Component.PRECEDENCE] = precedence_detail.bound

        jcc_affected = (mode is ThroughputMode.LOOP
                        and affected_by_jcc_erratum(block, self.cfg,
                                                    analyzed))
        lsd_applicable = (mode is ThroughputMode.LOOP
                          and lsd_fits(ops, self.cfg))

        tp, fe, bottlenecks = _combine(bounds, mode, self.enabled,
                                       jcc_affected, lsd_applicable)

        return Prediction(
            throughput=tp, mode=mode, bounds=bounds,
            bottlenecks=bottlenecks, fe_component=fe,
            jcc_affected=jcc_affected, lsd_applicable=lsd_applicable,
            ports_detail=ports_detail,
            precedence_detail=precedence_detail,
            critical_instruction_indices=_critical_indices(
                bottlenecks, ports_critical, precedence_detail),
            ports_critical_indices=ports_critical,
        )

    def predict_many(self, blocks: Iterable[BasicBlock],
                     mode: ThroughputMode) -> List[Prediction]:
        """Predict every block of a batch (serial, shared analysis cache).

        The parallel counterpart is
        :meth:`repro.engine.Engine.predict_many`.
        """
        return [self.predict(block, mode) for block in blocks]

    def predict_unrolled(self, block: BasicBlock) -> Prediction:
        """TPU prediction (paper Eq. 1)."""
        return self.predict(block, ThroughputMode.UNROLLED)

    def predict_loop(self, block: BasicBlock) -> Prediction:
        """TPL prediction (paper Eqs. 2-3)."""
        return self.predict(block, ThroughputMode.LOOP)

    def component_bound(self, block: BasicBlock, component: Component,
                        mode: ThroughputMode) -> Fraction:
        """The raw bound of a single component ("only X" ablations).

        Routed through the shared :class:`BlockAnalysis`, so querying
        every component of a block in a loop (as the ablation benches do)
        analyzes the block once instead of once per query.
        """
        analysis = self.cache.analysis(block)
        block = analysis.block
        ops = analysis.ops
        if component is Component.PREDEC:
            return (simple_predec_bound(block, self.cfg, mode)
                    if self.simple_predec
                    else predec_bound(block, self.cfg, mode))
        if component is Component.DEC:
            return (simple_dec_bound(ops, self.cfg) if self.simple_dec
                    else dec_bound(ops, self.cfg))
        if component is Component.DSB:
            return dsb_bound(ops, block.num_bytes, self.cfg)
        if component is Component.LSD:
            return lsd_bound(ops, self.cfg)
        if component is Component.ISSUE:
            return issue_bound(ops, self.cfg)
        if component is Component.PORTS:
            return analysis.ports().bound
        if component is Component.PRECEDENCE:
            return analysis.precedence().bound
        raise ValueError(f"unknown component {component}")
