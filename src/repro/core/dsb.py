"""The DSB (µop cache) delivery bound (paper §4.5)."""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

from repro.uarch.config import MicroArchConfig
from repro.uops.blockinfo import MacroOp


def dsb_bound(ops: Sequence[MacroOp], block_length: int,
              cfg: MicroArchConfig) -> Fraction:
    """Cycles per iteration when µops stream from the DSB.

    For blocks shorter than 32 bytes the branch at the end of the block
    prevents loading further µops from the same 32-byte region in the same
    cycle, so the delivery cost is rounded up to whole cycles.
    """
    n = sum(op.info.fused_uops for op in ops)
    w = cfg.dsb_width
    if block_length < 32:
        return Fraction(math.ceil(Fraction(n, w)))
    return Fraction(n, w)
