"""JCC-erratum detection (paper §4.2, footnote 1).

As a mitigation for the Jump Conditional Code erratum, Skylake-family CPUs
do not cache (in the DSB) 32-byte regions containing a jump that crosses
or ends on a 32-byte boundary.  Affected loops fall back to the legacy
decode pipeline, so their front-end bound is max(Predec, Dec).

Blocks are assumed to start at a 32-byte-aligned address (the measurement
harness of the BHive substrate places them there).
"""

from __future__ import annotations

from typing import Sequence

from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.blockinfo import AnalyzedInstruction

_REGION = 32


def affected_by_jcc_erratum(block: BasicBlock, cfg: MicroArchConfig,
                            analyzed: Sequence[AnalyzedInstruction],
                            ) -> bool:
    """True when the JCC-erratum mitigation forces legacy decoding.

    A jump "instruction" includes macro-fused pairs: the fused flag
    producer and branch form a single jump for the purposes of the
    mitigation.
    """
    if not cfg.jcc_erratum:
        return False
    offsets = block.instruction_offsets()
    for entry in analyzed:
        if not entry.instr.is_branch:
            continue
        end = offsets[entry.index] + entry.instr.length - 1
        start = offsets[entry.index]
        if entry.fused_into_prev:
            start = offsets[entry.index - 1]
        if start // _REGION != end // _REGION or (end + 1) % _REGION == 0:
            return True
    return False
