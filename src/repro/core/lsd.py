"""The loop-stream-detector bound (paper §4.6)."""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

from repro.uarch.config import MicroArchConfig
from repro.uops.blockinfo import MacroOp


def lsd_fits(ops: Sequence[MacroOp], cfg: MicroArchConfig) -> bool:
    """True when the loop's µops fit into the IDQ (LSD applicability)."""
    n = sum(op.info.fused_uops for op in ops)
    return cfg.lsd_enabled and n <= cfg.idq_size


def lsd_unroll_count(n_uops: int, cfg: MicroArchConfig) -> int:
    """How many times the LSD unrolls a loop of *n_uops* µops.

    On microarchitectures with LSD unrolling (ICL and later), small loops
    are unrolled so that close to a full issue group can be streamed per
    cycle.  The rule used here — unroll until two issue groups' worth of
    µops are in flight, bounded by the IDQ capacity — approximates the
    behaviour reverse-engineered in the uiCA paper (see DESIGN.md).
    """
    if not cfg.lsd_unrolls or n_uops == 0:
        return 1
    target = math.ceil(2 * cfg.issue_width / n_uops)
    capacity = max(1, cfg.idq_size // n_uops)
    return max(1, min(target, capacity))


def lsd_bound(ops: Sequence[MacroOp], cfg: MicroArchConfig) -> Fraction:
    """Cycles per iteration when µops stream from the LSD.

    The last µop of an iteration and the first µop of the next cannot be
    streamed in the same cycle, hence the ceiling; LSD unrolling amortizes
    that ceiling over several logical iterations.
    """
    n = sum(op.info.fused_uops for op in ops)
    unroll = lsd_unroll_count(n, cfg)
    return Fraction(math.ceil(Fraction(n * unroll, cfg.issue_width)), unroll)
