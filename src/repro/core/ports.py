"""The execution-port contention bound (paper §4.8).

Assuming the renamer distributes µops optimally across their allowed
ports, the throughput is bounded, for every port combination *pc*, by
``u/|pc|`` where *u* is the number of µops that can only execute on ports
within *pc*.  Rather than considering every one of the exponentially many
port combinations, the paper's heuristic only considers combinations
arising as the union of the port sets of *pairs* of µops — which it found
to give the same bound as the exact LP of uops.info on all of BHive.

Both the pairwise heuristic and the exact LP (used by the ablation bench
``benchmarks/test_ablation_ports_lp.py``) are implemented here.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.uops.blockinfo import MacroOp

PortSet = FrozenSet[int]


@dataclass(frozen=True)
class PortsResult:
    """The bound plus the data needed for interpretable feedback.

    Attributes:
        bound: the Ports throughput bound (cycles/iteration).
        critical_combination: the port combination attaining the bound.
        critical_uops: number of µops confined to that combination.
    """

    bound: Fraction
    critical_combination: Optional[PortSet]
    critical_uops: int


def _uop_port_multiset(ops: Sequence[MacroOp]) -> Counter:
    """Count dispatched µops by port set.

    Eliminated µops and NOPs have no port sets and are excluded, as are
    macro-fused branches' flag-producer halves (already merged into one
    µop by the macro-op construction) — matching §4.8's exclusions.
    """
    counts: Counter = Counter()
    for op in ops:
        for ports in op.info.port_sets:
            counts[ports] += 1
    return counts


#: Global memo of the pairwise heuristic, keyed by the canonical port
#: multiset (the bound is a pure function of it).  The same multiset
#: recurs across blocks, predictors, and µarchs with equal port maps, so
#: this deduplicates the quadratic pair-union search engine-wide.
_PORTS_MEMO: Dict[Tuple[Tuple[Tuple[int, ...], int], ...], PortsResult] = {}


def _multiset_key(counts: Counter) -> Tuple[Tuple[Tuple[int, ...], int], ...]:
    """Canonical, hashable form of a µop port multiset."""
    return tuple(sorted((tuple(sorted(ports)), cnt)
                        for ports, cnt in counts.items()))


def clear_ports_memo() -> None:
    """Drop the global heuristic memo (for tests)."""
    _PORTS_MEMO.clear()


def ports_bound(ops: Sequence[MacroOp]) -> PortsResult:
    """The pairwise port-combination heuristic of §4.8.

    Results are memoized on the canonical port-multiset key, and the
    pair-union candidates are visited in a deterministic order (smallest
    combination first, then lexicographically) so ties in the bound
    always report the same critical combination regardless of hash
    randomization.
    """
    return ports_bound_counts(_uop_port_multiset(ops))


def ports_bound_counts(counts: Counter) -> PortsResult:
    """:func:`ports_bound` on a precomputed µop port multiset.

    The columnar core (:mod:`repro.engine.columnar`) keeps the multiset
    as a per-entry column and calls this directly; both entry points
    share :data:`_PORTS_MEMO`, so warm results transfer between cores.
    """
    if not counts:
        return PortsResult(Fraction(0), None, 0)

    key = _multiset_key(counts)
    cached = _PORTS_MEMO.get(key)
    if cached is not None:
        return cached

    combos = list(counts)
    pair_unions = sorted({pc | pc2 for pc in combos for pc2 in combos},
                         key=lambda pc: (len(pc), sorted(pc)))

    best = Fraction(0)
    best_combo: Optional[PortSet] = None
    best_uops = 0
    for pc in pair_unions:
        u = sum(cnt for ports, cnt in counts.items() if ports <= pc)
        bound = Fraction(u, len(pc))
        if bound > best:
            best, best_combo, best_uops = bound, pc, u
    result = PortsResult(best, best_combo, best_uops)
    _PORTS_MEMO[key] = result
    return result


def critical_instructions(ops: Sequence[MacroOp],
                          result: PortsResult) -> List[int]:
    """Indices of instructions whose µops experience the maximal
    contention (interpretable feedback when Ports is the bottleneck)."""
    if result.critical_combination is None:
        return []
    pc = result.critical_combination
    indices = []
    for op in ops:
        if any(ports <= pc for ports in op.info.port_sets):
            indices.append(op.first_index)
    return indices


def ports_bound_lp(ops: Sequence[MacroOp]) -> Fraction:
    """The exact LP bound of [8] (uops.info), via scipy.

    Minimize T subject to: each µop class distributes its count across its
    allowed ports, and every port receives at most T µops per iteration.
    The pairwise heuristic is a lower bound of this LP value; the paper
    reports they coincide on all BHive benchmarks.
    """
    from scipy.optimize import linprog

    counts = _uop_port_multiset(ops)
    if not counts:
        return Fraction(0)

    classes = sorted(counts.items(), key=lambda kv: sorted(kv[0]))
    all_ports = sorted({p for ports, _ in classes for p in ports})
    port_index = {p: i for i, p in enumerate(all_ports)}

    # Variables: x[c,p] for each class c and allowed port p, then T last.
    var_index: Dict[Tuple[int, int], int] = {}
    for c, (ports, _count) in enumerate(classes):
        for p in sorted(ports):
            var_index[(c, p)] = len(var_index)
    t_index = len(var_index)
    n_vars = t_index + 1

    objective = [0.0] * n_vars
    objective[t_index] = 1.0

    # Equality: sum_p x[c,p] == count_c.
    a_eq = []
    b_eq = []
    for c, (ports, count) in enumerate(classes):
        row = [0.0] * n_vars
        for p in ports:
            row[var_index[(c, p)]] = 1.0
        a_eq.append(row)
        b_eq.append(float(count))

    # Inequality: sum_c x[c,p] - T <= 0 for each port p.
    a_ub = []
    b_ub = []
    for p in all_ports:
        row = [0.0] * n_vars
        for c, (ports, _count) in enumerate(classes):
            if p in ports:
                row[var_index[(c, p)]] = 1.0
        row[t_index] = -1.0
        a_ub.append(row)
        b_ub.append(0.0)

    res = linprog(objective, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                  bounds=[(0, None)] * n_vars, method="highs")
    if not res.success:
        raise RuntimeError(f"port LP failed: {res.message}")
    # The optimum is rational with a small denominator (≤ lcm of subset
    # sizes); snap the float solution back to it.
    max_den = math.lcm(*range(1, len(all_ports) + 1))
    return Fraction(res.x[t_index]).limit_denominator(max_den)
