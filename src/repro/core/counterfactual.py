"""Counterfactual analysis: what if a component were infinitely fast?

Because Facile is the maximum of independent bounds, idealizing a
component is simply recombining the remaining bounds (§6.4, Table 4).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.components import Component, ThroughputMode
from repro.core.model import Prediction
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig


def idealized_speedup(prediction: Prediction,
                      component: Component) -> Optional[float]:
    """Speedup when *component* is made infinitely fast.

    Returns None when the remaining bounds are all zero (a block whose
    throughput was entirely determined by the idealized component).
    """
    if prediction.throughput is None:
        return None
    enabled = set(Component) - {component}
    ideal = prediction.recombined(enabled)
    if ideal.throughput is None or ideal.throughput == 0:
        return None
    return float(prediction.throughput / ideal.throughput)


def speedup_table(cfg: MicroArchConfig, blocks: Sequence[BasicBlock],
                  components: Iterable[Component],
                  mode: ThroughputMode = ThroughputMode.UNROLLED,
                  ) -> Dict[Component, float]:
    """Average speedup per idealized component over a benchmark suite.

    This regenerates one row of the paper's Table 4.  The average is the
    arithmetic mean of per-block speedups (blocks whose throughput is
    entirely due to the idealized component are skipped).

    The base predictions are produced in one batch by the engine (cached
    and, when a default worker count is configured, parallel); every
    idealization is then a cheap recombination of the batch results.
    """
    # Deferred import: the engine builds on repro.core.
    from repro.engine.engine import Engine

    speedups: Dict[Component, List[float]] = {c: [] for c in components}
    with Engine(cfg) as engine:
        predictions = engine.predict_many(list(blocks), mode)
    for prediction in predictions:
        for component in speedups:
            value = idealized_speedup(prediction, component)
            if value is not None:
                speedups[component].append(value)
    return {
        component: (sum(values) / len(values) if values else 1.0)
        for component, values in speedups.items()
    }
