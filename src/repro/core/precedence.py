"""The precedence-constraint bound (paper §4.9).

Builds the weighted dependence graph of the block and computes the
maximum cycle ratio — the recurrence-constrained minimum initiation
interval, in modulo-scheduling terms — with Howard's algorithm, falling
back to Lawler's parametric search in the (never observed) event that
policy iteration fails to converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from repro.graph.depgraph import DependenceGraphBuilder
from repro.graph.howard import howard_max_cycle_ratio
from repro.graph.lawler import lawler_max_cycle_ratio
from repro.isa.block import BasicBlock
from repro.uops.database import UopsDatabase


@dataclass(frozen=True)
class PrecedenceResult:
    """The bound plus the critical dependency chain.

    Attributes:
        bound: maximum cycle ratio (0 when the graph is acyclic).
        critical_chain: instruction indices on a critical cycle, for
            interpretable feedback when Precedence is the bottleneck.
    """

    bound: Fraction
    critical_chain: List[int]


def precedence_bound(block: BasicBlock,
                     db: UopsDatabase) -> PrecedenceResult:
    """The Precedence throughput bound of *block*."""
    builder = DependenceGraphBuilder(db)
    graph = builder.build(block)
    ratio, cycle = howard_max_cycle_ratio(graph)
    if ratio is None:
        return PrecedenceResult(Fraction(0), [])
    return PrecedenceResult(ratio, builder.cycle_instructions(cycle))


def precedence_bound_lawler(block: BasicBlock,
                            db: UopsDatabase) -> Fraction:
    """Reference implementation using Lawler's algorithm (ablation)."""
    graph = DependenceGraphBuilder(db).build(block)
    ratio = lawler_max_cycle_ratio(graph)
    return ratio if ratio is not None else Fraction(0)
