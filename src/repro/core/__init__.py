"""Facile: the analytical basic-block throughput model (paper §4).

The model rests on two hypotheses: (1) the throughput of a basic block is
determined by its slowest pipeline component or by dependency chains, and
(2) pipeline components can be analyzed independently because buffers
decouple the stages.  Accordingly the model is the maximum of a small set
of per-component bounds, each computed by a closed-form or small fixpoint
analysis — no cycle-by-cycle simulation.

Entry point: :class:`~repro.core.model.Facile`.
"""

from repro.core.components import Component, ThroughputMode
from repro.core.model import Facile, Prediction
from repro.core.counterfactual import idealized_speedup, speedup_table
from repro.core.trace import TraceFacile, TracePrediction, TraceSegment

__all__ = [
    "Component",
    "Facile",
    "Prediction",
    "ThroughputMode",
    "TraceFacile",
    "TracePrediction",
    "TraceSegment",
    "idealized_speedup",
    "speedup_table",
]
