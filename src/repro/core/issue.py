"""The issue-width bound (paper §4.7)."""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.uarch.config import MicroArchConfig
from repro.uops.blockinfo import MacroOp


def issue_bound(ops: Sequence[MacroOp], cfg: MicroArchConfig) -> Fraction:
    """Issued µops (fused-domain, after unlamination) over issue width."""
    n = sum(op.info.issued_uops for op in ops)
    return Fraction(n, cfg.issue_width)
