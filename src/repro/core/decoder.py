"""The decoder throughput bound (paper §4.4, Algorithm 1).

The decoding unit has one complex decoder (instructions with up to four
µops) and n-1 simple decoders (single-µop instructions only); the complex
decoder always handles the first instruction fetched in a cycle.  The
bound is obtained by simulating the allocation of instructions to decoders
until the first instruction of the block lands on the same decoder a
second time — at that point the allocation is periodic and the steady-state
cost per iteration is known.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence

from repro.uarch.config import MicroArchConfig
from repro.uops.blockinfo import MacroOp


def dec_bound(ops: Sequence[MacroOp], cfg: MicroArchConfig) -> Fraction:
    """The Dec throughput bound in cycles per iteration (Algorithm 1).

    *ops* is the macro-op stream: macro-fused pairs count as a single
    instruction, exactly as the decoders see them after the IQ.
    """
    n_decoders = cfg.n_decoders
    cur_dec = n_decoders - 1
    n_available_simple = 0
    complex_in_iteration: List[int] = [0]  # index 0 unused
    first_instr_on_dec = [-1] * n_decoders
    iteration = 0

    # Termination: the first instruction lands on one of n_decoders
    # decoders each iteration, so a repeat occurs within n_decoders + 1
    # iterations by pigeonhole.
    while True:
        iteration += 1
        complex_in_iteration.append(0)
        for op in ops:
            if op.info.requires_complex_decoder:
                cur_dec = 0
                n_available_simple = op.info.n_available_simple_decoders
            else:
                blocked_on_last = (
                    cur_dec + 1 == n_decoders - 1
                    and op.is_macro_fusible
                    and not cfg.macro_fusible_on_last_decoder)
                if n_available_simple == 0 or blocked_on_last:
                    cur_dec = 0
                    n_available_simple = n_decoders - 1
                else:
                    cur_dec += 1
                    n_available_simple -= 1
            if op.is_branch:
                n_available_simple = 0
            if cur_dec == 0:
                complex_in_iteration[iteration] += 1
            if op.first_index == 0:
                first = first_instr_on_dec[cur_dec]
                if first >= 0:
                    unroll = iteration - first
                    cycles = sum(complex_in_iteration[first:iteration])
                    return Fraction(cycles, unroll)
                first_instr_on_dec[cur_dec] = iteration


def simple_dec_bound(ops: Sequence[MacroOp],
                     cfg: MicroArchConfig) -> Fraction:
    """SimpleDec = max(n/d, c): instruction count over decoder count, or
    the number of complex-decoder instructions (paper §4.4)."""
    n = len(ops)
    c = sum(1 for op in ops if op.info.requires_complex_decoder)
    return max(Fraction(n, cfg.n_decoders), Fraction(c))
