"""The predecoder throughput bound (paper §4.3).

The predecoder fetches aligned 16-byte blocks and finds instruction
boundaries, predecoding up to five instructions per cycle.  Crossing a
16-byte boundary can cost an extra cycle depending on where the nominal
opcode lies, and length-changing prefixes (LCP) cost three cycles each,
partially hidden behind the predecode of the previous block.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, Tuple

from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig

_BLOCK = 16


def _unroll_factor(length: int, mode: ThroughputMode) -> int:
    """Iterations after which the predecoder's behaviour repeats.

    Under unrolling, copies of the block tile the 16-byte grid with period
    lcm(l, 16)/l; a loop restarts at the same address every iteration.
    """
    if mode is ThroughputMode.LOOP:
        return 1
    return math.lcm(length, _BLOCK) // length


def _instruction_events(block: BasicBlock,
                        unroll: int) -> Tuple[List[int], List[int],
                                              List[int], int]:
    """Per-16-byte-block event counts over *unroll* copies of the block.

    Returns:
        (L, O, LCP, n) where, following the paper's notation, L[b] counts
        instruction instances whose last byte is in block b, O[b] those
        whose first nominal-opcode byte is in block b but whose last byte
        is not, LCP[b] those with a length-changing prefix whose nominal
        opcode starts in block b, and n is the number of 16-byte blocks.
    """
    length = block.num_bytes
    n = math.ceil(unroll * length / _BLOCK)
    counts_l = [0] * n
    counts_o = [0] * n
    counts_lcp = [0] * n
    offsets = block.instruction_offsets()
    for copy in range(unroll):
        base = copy * length
        for instr, offset in zip(block, offsets):
            start = base + offset
            opcode_byte = start + instr.opcode_offset
            last_byte = start + instr.length - 1
            opcode_block = opcode_byte // _BLOCK
            last_block = last_byte // _BLOCK
            counts_l[last_block] += 1
            if opcode_block != last_block:
                counts_o[opcode_block] += 1
            if instr.has_lcp:
                counts_lcp[opcode_block] += 1
    return counts_l, counts_o, counts_lcp, n


def predec_bound(block: BasicBlock, cfg: MicroArchConfig,
                 mode: ThroughputMode) -> Fraction:
    """The Predec throughput bound in cycles per iteration."""
    width = cfg.predecode_width
    unroll = _unroll_factor(block.num_bytes, mode)
    counts_l, counts_o, counts_lcp, n = _instruction_events(block, unroll)

    cycles_nlcp = [
        math.ceil((counts_l[b] + counts_o[b]) / width) for b in range(n)]

    total = 0
    for b in range(n):
        prev = cycles_nlcp[b - 1]  # b == 0 wraps to block n-1 (steady state)
        penalty = max(0, 3 * counts_lcp[b] - max(0, prev - 1))
        total += cycles_nlcp[b] + penalty
    return Fraction(total, unroll)


def simple_predec_bound(block: BasicBlock, cfg: MicroArchConfig,
                        mode: ThroughputMode) -> Fraction:
    """SimplePredec: one 16-byte block per cycle (paper §4.3)."""
    del cfg, mode
    return Fraction(block.num_bytes, _BLOCK)
