"""Reproduction of "Facile: Fast, Accurate, and Interpretable Basic-Block
Throughput Prediction" (Abel, Sharma, Reineke — IISWC 2023).

Public entry points:

* :class:`repro.core.Facile` — the analytical throughput model.
* :class:`repro.core.TraceFacile` — multi-block traces (§7 extension).
* :class:`repro.isa.BasicBlock` — parse/assemble basic blocks.
* :mod:`repro.uarch` — the nine microarchitecture configurations.
* :mod:`repro.sim` — the cycle-level measurement substrate.
* :mod:`repro.baselines` — comparison-predictor analogs.
* :mod:`repro.eval` — tables and figures of the paper's evaluation.
"""

__version__ = "1.0.0"
