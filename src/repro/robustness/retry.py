"""Bounded retries with exponential backoff and full jitter.

:class:`RetryPolicy` is the one retry shape shared across the repo —
the service client's transport, the guarded predictors, anything that
wants "try again, politely".  Delays follow the *full jitter* scheme
(AWS architecture blog): attempt *k* sleeps a uniform random value in
``[0, min(cap, base * 2**k)]``, which decorrelates competing retriers
without the complexity of tracking peers.

The random source and sleep function are injectable so tests can pin
the jitter and assert exact schedules without waiting on wall-clock.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional

from repro.obs import metrics

#: Defaults: 3 attempts total, 100 ms base, 2 s cap.
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_BASE = 0.1
DEFAULT_CAP = 2.0

#: Every backoff across the repo funnels through RetryPolicy.backoff,
#: which makes it the one choke point for the global retry counter.
_RETRIES = metrics.counter(
    "facile_retries_total",
    metrics.METRIC_CATALOG["facile_retries_total"][1])


class RetryPolicy:
    """Bounded exponential backoff with full jitter.

    Args:
        max_attempts: total tries, the first one included (>= 1; 1
            disables retrying).
        base: backoff base in seconds (delay grows as ``base * 2**k``).
        cap: upper bound on any single delay.
        rng: random source for the jitter (injectable; seeded tests).
        sleep: the sleep function (injectable; tests pass a recorder).
    """

    def __init__(self, max_attempts: int = DEFAULT_MAX_ATTEMPTS, *,
                 base: float = DEFAULT_BASE, cap: float = DEFAULT_CAP,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base < 0 or cap < 0:
            raise ValueError("base and cap must be >= 0")
        self.max_attempts = max_attempts
        self.base = base
        self.cap = cap
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    def delay(self, attempt: int) -> float:
        """The jittered delay before retry number *attempt* (0-based)."""
        bound = min(self.cap, self.base * (2.0 ** attempt))
        return self._rng.uniform(0.0, bound) if bound > 0 else 0.0

    def backoff(self, attempt: int,
                floor: Optional[float] = None) -> float:
        """Sleep before retry *attempt*; returns the slept duration.

        Args:
            attempt: 0-based retry number (first retry = 0).
            floor: minimum delay regardless of jitter — used to honor a
                server's ``Retry-After`` (never sleep less than asked,
                but still cap at :attr:`cap` ∨ floor).
        """
        duration = self.delay(attempt)
        if floor is not None:
            duration = max(duration, min(floor, max(self.cap, floor)))
        _RETRIES.inc()
        if duration > 0:
            self._sleep(duration)
        return duration

    def attempts_left(self, attempt: int) -> bool:
        """Whether attempt number *attempt* (0-based) may still run."""
        return attempt < self.max_attempts
