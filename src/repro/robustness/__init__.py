"""Fault tolerance: typed failures, breakers, retries, fault injection.

The robustness layer hardens every execution path of the repo — the
batch engine's worker pool, the baseline predictors, the HTTP service,
and the discovery campaigns — and ships the deterministic chaos harness
that proves the hardening works:

* :mod:`repro.robustness.errors` — the typed failure vocabulary
  (:class:`PredictorError` result slots, :class:`CircuitOpenError`,
  :class:`DeadlineExceeded`, :class:`QueueFullError`);
* :mod:`repro.robustness.breaker` — :class:`CircuitBreaker`
  (closed / open / half-open, cooldown, probes);
* :mod:`repro.robustness.retry` — :class:`RetryPolicy` (bounded
  exponential backoff with full jitter);
* :mod:`repro.robustness.faults` — :class:`FaultPlan`, the seeded
  deterministic fault-injection harness behind ``REPRO_FAULTS``.

Reference: ``docs/ROBUSTNESS.md``.
"""

from repro.robustness.breaker import (
    CLOSED,
    DEFAULT_COOLDOWN,
    DEFAULT_FAILURE_THRESHOLD,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from repro.robustness.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    EngineTaskError,
    FaultInjected,
    PredictorError,
    QueueFullError,
)
from repro.robustness.faults import (
    Fault,
    FaultPlan,
    FaultSpecError,
    active_plan,
    injected,
    maybe_inject,
    set_fault_plan,
)
from repro.robustness.retry import RetryPolicy

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEFAULT_COOLDOWN",
    "DEFAULT_FAILURE_THRESHOLD",
    "DeadlineExceeded",
    "EngineTaskError",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "FaultSpecError",
    "HALF_OPEN",
    "OPEN",
    "PredictorError",
    "QueueFullError",
    "RetryPolicy",
    "active_plan",
    "injected",
    "maybe_inject",
    "set_fault_plan",
]
