"""Per-dependency circuit breakers.

A :class:`CircuitBreaker` guards calls into one fallible dependency (a
baseline predictor, in this repo) with the classic three-state machine:

* **closed** — calls flow; consecutive failures are counted, and
  reaching ``failure_threshold`` trips the breaker open;
* **open** — calls are refused instantly (:class:`CircuitOpenError`)
  until ``cooldown`` seconds have passed, so a broken tool costs a
  skipped entry instead of a stalled campaign or request;
* **half-open** — after the cooldown, up to ``probe_limit`` trial calls
  are let through: one success closes the breaker, one failure re-opens
  it (restarting the cooldown).

The clock is injectable so tests drive the state machine
deterministically; the default is ``time.monotonic``.  All transitions
are lock-protected — service request threads share breakers.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.obs import metrics
from repro.robustness.errors import CircuitOpenError

#: State names (also the wire/report vocabulary).
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

#: Closed→open and half-open→open transitions both land in
#: _trip_locked, so this counter sees every trip exactly once.
_BREAKER_OPENS = metrics.counter(
    "facile_breaker_open_total",
    metrics.METRIC_CATALOG["facile_breaker_open_total"][1],
    labels=("breaker",))

#: Defaults: open after 3 consecutive failures, probe again after 30 s.
DEFAULT_FAILURE_THRESHOLD = 3
DEFAULT_COOLDOWN = 30.0


class CircuitBreaker:
    """One breaker guarding one named dependency.

    Args:
        name: the guarded dependency (predictor name, ...).
        failure_threshold: consecutive failures that trip the breaker.
        cooldown: seconds the breaker stays open before probing.
        probe_limit: concurrent trial calls allowed while half-open.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(self, name: str, *,
                 failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
                 cooldown: float = DEFAULT_COOLDOWN,
                 probe_limit: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if probe_limit < 1:
            raise ValueError("probe_limit must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.probe_limit = probe_limit
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        # Lifetime counters (surfaced by /health and campaign notes).
        self.failures = 0
        self.successes = 0
        self.rejections = 0
        self.times_opened = 0

    # -- state ---------------------------------------------------------

    @property
    def state(self) -> str:
        """The current state, advancing open → half-open on cooldown."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (self._state == OPEN and self._opened_at is not None
                and self._clock() - self._opened_at >= self.cooldown):
            self._state = HALF_OPEN
            self._probes_in_flight = 0
        return self._state

    def retry_after(self) -> float:
        """Seconds until the breaker will next admit a probe (0 = now)."""
        with self._lock:
            if self._state_locked() != OPEN or self._opened_at is None:
                return 0.0
            return max(
                0.0, self.cooldown - (self._clock() - self._opened_at))

    # -- the call protocol ---------------------------------------------

    def before_call(self) -> None:
        """Gate one call; raises :class:`CircuitOpenError` if refused.

        Every admitted call must be answered with exactly one
        :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return
            if state == HALF_OPEN:
                if self._probes_in_flight < self.probe_limit:
                    self._probes_in_flight += 1
                    return
            self.rejections += 1
        raise CircuitOpenError(self.name, self.retry_after())

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(
                    0, self._probes_in_flight - 1)
            self._state = CLOSED
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                # A failed probe re-opens immediately.
                self._probes_in_flight = max(
                    0, self._probes_in_flight - 1)
                self._trip_locked()
            elif (self._state == CLOSED and self._consecutive_failures
                    >= self.failure_threshold):
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self.times_opened += 1
        _BREAKER_OPENS.inc(breaker=self.name)

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """A JSON-ready snapshot (state + lifetime counters)."""
        return {
            "state": self.state,
            "failures": self.failures,
            "successes": self.successes,
            "rejections": self.rejections,
            "times_opened": self.times_opened,
            "failure_threshold": self.failure_threshold,
            "cooldown_sec": self.cooldown,
        }
