"""Deterministic fault injection (the chaos half of the robustness layer).

A :class:`FaultPlan` decides, purely as a function of its seed and its
fault clauses, which *calls* at which *sites* fail and how.  A site is a
dotted name for one instrumented call point (``engine.task``,
``predictor.llvm-mca-15``, ``service.predict``); every site keeps its own
monotonic call counter, and a clause either names explicit call indices
or a probability that is resolved by hashing ``(seed, kind, site,
index)`` — so two plans built from the same spec always inject the
*identical* fault sequence, which is what makes chaos tests reproducible
rather than flaky.

Plans are activated three ways:

* the ``REPRO_FAULTS`` environment variable (parsed lazily, once);
* :func:`set_fault_plan` (test fixtures);
* the :func:`injected` context manager (scoped activation).

Spec syntax (clauses separated by ``;``, see ``docs/ROBUSTNESS.md``)::

    REPRO_FAULTS="seed=7; worker_kill@engine.task:2,5; \
                  predictor_error@predictor.*:p=0.1; \
                  timeout@engine.task:3; slow@service.predict:0:ms=20"

Fault kinds:

=================  =====================================================
``worker_kill``    the worker process executing the task calls
                   ``os._exit`` (SIGKILL-grade crash, no cleanup)
``predictor_error``the call raises :class:`FaultInjected`
``timeout``        the call sleeps past any reasonable per-task timeout
``slow``           the call sleeps ``ms`` milliseconds, then succeeds
=================  =====================================================

Instrumented code draws faults with :meth:`FaultPlan.check` (engine
dispatch, which forwards the fault to the worker as part of the task
payload) or acts them out in-process with :func:`maybe_inject`
(predictor and service sites).  A drawn fault is consumed: the engine
clears it from retried payloads, so recovery always converges.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.robustness.errors import FaultInjected

#: Recognized fault kinds (see module docstring).
FAULT_KINDS = ("worker_kill", "predictor_error", "timeout", "slow")

#: How long a ``timeout`` fault sleeps: far past any sane per-task
#: timeout, short enough that a leaked sleeper cannot wedge a test run.
HANG_SECONDS = 300.0

#: Default extra latency of a ``slow`` fault.
DEFAULT_SLOW_MS = 25.0


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec that cannot be parsed."""


@dataclass(frozen=True)
class Fault:
    """One concrete injected fault: *kind* at call *index* of *site*."""

    kind: str
    site: str
    index: int
    delay_ms: float = 0.0

    def encode(self) -> Tuple[str, float]:
        """The compact picklable form shipped inside task payloads."""
        return (self.kind, self.delay_ms)


@dataclass(frozen=True)
class FaultClause:
    """One parsed spec clause: *kind* at sites matching *pattern*,
    firing at explicit *indices* or with probability *rate*."""

    kind: str
    pattern: str
    indices: Tuple[int, ...] = ()
    rate: float = 0.0
    delay_ms: float = DEFAULT_SLOW_MS

    def fires(self, seed: int, site: str, index: int) -> bool:
        if not fnmatch.fnmatchcase(site, self.pattern):
            return False
        if self.indices:
            return index in self.indices
        if self.rate <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{seed}:{self.kind}:{site}:{index}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return draw < self.rate


def _parse_clause(text: str) -> FaultClause:
    head, _, tail = text.partition("@")
    kind = head.strip()
    if kind not in FAULT_KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r} "
            f"(expected one of {', '.join(FAULT_KINDS)})")
    if not tail:
        raise FaultSpecError(
            f"fault clause {text!r} needs a site: kind@site[:indices]")
    parts = tail.split(":")
    pattern = parts[0].strip()
    if not pattern:
        raise FaultSpecError(f"fault clause {text!r} has an empty site")
    indices: Tuple[int, ...] = ()
    rate = 0.0
    delay_ms = DEFAULT_SLOW_MS
    for part in parts[1:]:
        part = part.strip()
        if not part:
            continue
        if part.startswith("p="):
            try:
                rate = float(part[2:])
            except ValueError:
                raise FaultSpecError(f"bad probability in {text!r}")
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(
                    f"probability out of [0, 1] in {text!r}")
        elif part.startswith("ms="):
            try:
                delay_ms = float(part[3:])
            except ValueError:
                raise FaultSpecError(f"bad ms= delay in {text!r}")
            if delay_ms < 0:
                raise FaultSpecError(f"negative ms= delay in {text!r}")
        else:
            try:
                indices = tuple(sorted(
                    int(i) for i in part.split(",") if i.strip()))
            except ValueError:
                raise FaultSpecError(
                    f"bad call-index list in {text!r} "
                    "(expected e.g. '0,3,7', 'p=0.1', or 'ms=20')")
    if indices and rate:
        raise FaultSpecError(
            f"clause {text!r} mixes explicit indices and p=; pick one")
    if not indices and not rate:
        raise FaultSpecError(
            f"clause {text!r} never fires: give indices or p=")
    return FaultClause(kind=kind, pattern=pattern, indices=indices,
                       rate=rate, delay_ms=delay_ms)


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Call counters are per-site and owned by the plan instance; two
    plans parsed from the same spec traverse identical sequences.  The
    counters are guarded by a lock because service request threads and
    the batcher's dispatcher may draw concurrently.
    """

    seed: int = 0
    clauses: Tuple[FaultClause, ...] = ()
    _counters: Dict[str, int] = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` syntax (see module docstring)."""
        seed = 0
        clauses: List[FaultClause] = []
        for token in spec.split(";"):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                try:
                    seed = int(token[5:])
                except ValueError:
                    raise FaultSpecError(f"bad seed in {token!r}")
                continue
            clauses.append(_parse_clause(token))
        if not clauses:
            raise FaultSpecError(
                f"fault spec {spec!r} contains no fault clauses")
        return cls(seed=seed, clauses=tuple(clauses))

    def check(self, site: str) -> Optional[Fault]:
        """Draw the next call at *site*; the matching fault, if any.

        Advances the site's call counter exactly once per call; the
        first matching clause wins.
        """
        with self._lock:
            index = self._counters.get(site, 0)
            self._counters[site] = index + 1
        for clause in self.clauses:
            if clause.fires(self.seed, site, index):
                return Fault(kind=clause.kind, site=site, index=index,
                             delay_ms=clause.delay_ms)
        return None

    def sequence(self, site: str, n_calls: int) -> List[Optional[Fault]]:
        """The fault drawn at each of the next *n_calls* to *site*
        (advances the counters, like *n_calls* real calls would)."""
        return [self.check(site) for _ in range(n_calls)]

    def reset(self) -> None:
        """Rewind every site counter (a fresh, identical schedule)."""
        with self._lock:
            self._counters.clear()


# ---------------------------------------------------------------------------
# Plan activation
# ---------------------------------------------------------------------------

_ENV_VAR = "REPRO_FAULTS"
_active_lock = threading.Lock()
_active: Optional[FaultPlan] = None
_env_parsed = False


def _plan_from_env() -> Optional[FaultPlan]:
    raw = os.environ.get(_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        return FaultPlan.from_spec(raw)
    except FaultSpecError as exc:
        # An unusable plan must not take every command down with it.
        import warnings
        warnings.warn(f"ignoring invalid {_ENV_VAR}: {exc}")
        return None


def active_plan() -> Optional[FaultPlan]:
    """The currently active fault plan (None = no injection).

    The ``REPRO_FAULTS`` environment variable is consulted once, on
    first use; :func:`set_fault_plan` overrides it.
    """
    global _active, _env_parsed
    with _active_lock:
        if not _env_parsed:
            _env_parsed = True
            if _active is None:
                _active = _plan_from_env()
        return _active


def set_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install *plan* as the active plan; returns the previous one."""
    global _active, _env_parsed
    with _active_lock:
        previous = _active
        _active = plan
        _env_parsed = True  # an explicit plan always beats the env
        return previous


@contextmanager
def injected(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Activate *plan* for the duration of the ``with`` block."""
    previous = set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)


# ---------------------------------------------------------------------------
# In-process injection points
# ---------------------------------------------------------------------------

def maybe_inject(site: str) -> None:
    """Draw and act out a fault at *site*, in-process.

    ``slow`` sleeps and returns; ``predictor_error`` raises
    :class:`FaultInjected`; ``timeout`` sleeps :data:`HANG_SECONDS` (the
    caller's timeout machinery is expected to fire first);
    ``worker_kill`` is treated as ``predictor_error`` in-process —
    killing the calling process would take the test runner down.
    """
    plan = active_plan()
    if plan is None:
        return
    fault = plan.check(site)
    if fault is None:
        return
    act_in_process(fault.encode(), site)


def act_in_process(encoded: Tuple[str, float], site: str) -> None:
    """Act out an encoded fault without the option of killing anyone."""
    kind, delay_ms = encoded
    if kind == "slow":
        time.sleep(delay_ms / 1000.0)
        return
    if kind == "timeout":
        time.sleep(HANG_SECONDS)
        return
    raise FaultInjected(f"injected {kind} at {site}")


def act_in_worker(encoded: Tuple[str, float], site: str) -> None:
    """Act out an encoded fault inside a pool worker process.

    ``worker_kill`` exits the process without cleanup (what a crash or
    OOM kill looks like from the parent); everything else behaves as in
    :func:`act_in_process`.
    """
    kind, _ = encoded
    if kind == "worker_kill":
        os._exit(70)
    act_in_process(encoded, site)
