"""Typed failure vocabulary of the fault-tolerance layer.

Every mechanism in :mod:`repro.robustness` reports failures through
these types instead of letting raw exceptions escape:

* :class:`PredictorError` — a *result slot*: what the engine merges
  into a batch result when one task exhausted its retries, so a single
  failing block degrades one entry instead of aborting the batch;
* :class:`CircuitOpenError` — raised when a circuit breaker refuses a
  call; carries the breaker name and remaining cooldown so callers can
  record a typed skip;
* :class:`DeadlineExceeded` — a request outlived its deadline while
  queued (the service answers it with 504);
* :class:`QueueFullError` — the admission queue is at capacity (the
  service answers it with 429 + ``Retry-After``);
* :class:`FaultInjected` — the marker exception raised by the
  fault-injection harness (:mod:`repro.robustness.faults`), so tests
  can tell injected failures from real ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: The failure kinds a :class:`PredictorError` can carry.
ERROR_KINDS = ("timeout", "worker_crash", "exception", "circuit_open",
               "injected")


@dataclass(frozen=True)
class PredictorError:
    """A typed per-task failure, merged into batch results by index.

    Attributes:
        kind: one of :data:`ERROR_KINDS`.
        detail: human-readable failure description (exception text,
            breaker state, ...).  Never a traceback.
        attempts: how many times the task was tried before giving up.
        index: the task's index within its batch, when known.
    """

    kind: str
    detail: str
    attempts: int = 1
    index: Optional[int] = None

    def to_dict(self) -> dict:
        """A JSON-ready rendering (used by reports and responses)."""
        return {"error": self.kind, "detail": self.detail,
                "attempts": self.attempts}


class EngineTaskError(Exception):
    """Raised by ``Engine.predict_many(..., on_error="raise")`` when a
    task failed after all retries; wraps the :class:`PredictorError`."""

    def __init__(self, error: PredictorError):
        super().__init__(
            f"engine task {error.index} failed after {error.attempts} "
            f"attempt(s): [{error.kind}] {error.detail}")
        self.error = error


class CircuitOpenError(Exception):
    """A circuit breaker refused the call (it is open or saturated)."""

    def __init__(self, name: str, retry_after: float):
        super().__init__(
            f"circuit breaker {name!r} is open "
            f"(retry in {retry_after:.1f}s)")
        self.name = name
        self.retry_after = retry_after


class DeadlineExceeded(Exception):
    """The request's deadline passed before it could be served."""


class QueueFullError(Exception):
    """The bounded admission queue is at capacity; retry later."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class FaultInjected(Exception):
    """An exception deliberately raised by the fault-injection harness."""
