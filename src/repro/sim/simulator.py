"""The cycle-level simulator orchestrating front end and back end."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.components import ThroughputMode
from repro.core.jcc import affected_by_jcc_erratum
from repro.core.lsd import lsd_fits
from repro.engine.cache import AnalysisCache
from repro.isa.block import BasicBlock
from repro.sim.backend import BackEnd, SimOptions
from repro.sim.frontend import (
    DeliveryUnit,
    DsbFrontEnd,
    LegacyFrontEnd,
    LsdFrontEnd,
)
from repro.sim.uop import expand_macro_op
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


class SimulationError(Exception):
    """Raised when a simulation fails to make progress (internal bug)."""


class Simulator:
    """Cycle-by-cycle pipeline simulation of basic-block execution.

    Args:
        cfg: target microarchitecture.
        options: fidelity knobs (see :class:`SimOptions`).
        db: optionally shared uops database.
    """

    def __init__(self, cfg: MicroArchConfig,
                 options: Optional[SimOptions] = None,
                 db: Optional[UopsDatabase] = None):
        self.cfg = cfg
        self.options = options or SimOptions()
        self.db = db or UopsDatabase(cfg)

    # ------------------------------------------------------------------

    def simulate(self, block: BasicBlock, mode: ThroughputMode,
                 iterations: int) -> Dict[int, int]:
        """Run *iterations* repetitions; return iteration → retire cycle."""
        cfg = self.cfg
        # Shared with the analytical model and every other consumer of
        # this database: the block is characterized at most once.
        analysis = AnalysisCache.shared(self.db).analysis(block)
        analyzed = analysis.analyzed
        ops = analysis.ops
        expanded = [expand_macro_op(op, cfg) for op in ops]
        fused_counts = [len(e.fused) for e in expanded]

        frontend = self._select_frontend(block, mode, analyzed, ops,
                                         fused_counts)
        backend = BackEnd(expanded, cfg, self.options)
        backend.set_block_info(
            written_roots=[
                [r.name for r in op.instructions[0].regs_written()]
                for op in ops],
            eliminated_sources=[self._eliminated_source(op) for op in ops],
        )

        idq: List[DeliveryUnit] = []
        cycle = 0
        max_cycles = 10_000 + iterations * 60 * max(1, len(ops))
        while len(backend.retire_times) < iterations:
            space = backend.idq_space(cfg.idq_size, idq)
            frontend.tick(idq, space)
            backend.tick(cycle, idq)
            cycle += 1
            if cycle > max_cycles:
                raise SimulationError(
                    f"no progress after {max_cycles} cycles "
                    f"({len(backend.retire_times)}/{iterations} iterations)")
        return backend.retire_times

    def throughput(self, block: BasicBlock, mode: ThroughputMode,
                   warmup: int = 32, max_period: int = 36) -> float:
        """Steady-state cycles per iteration.

        The steady state of the pipeline is periodic (the predecoder
        repeats every lcm(l,16)/l iterations, the decoder wheel and issue
        groups add small factors).  We detect the exact period in the
        per-iteration retire deltas and average over whole periods, which
        avoids window-aliasing artifacts; if no period ≤ *max_period* is
        found, the plain window average is returned.
        """
        window = 3 * max_period
        times = self.simulate(block, mode, warmup + window)
        deltas = [times[i] - times[i - 1]
                  for i in range(warmup, warmup + window)]
        for period in range(1, max_period + 1):
            if all(deltas[i] == deltas[i + period]
                   for i in range(len(deltas) - period)):
                return sum(deltas[:period]) / period
        # No exact period found (slow phase drift): average the tail,
        # which excludes any residual start-up transient.
        tail = deltas[max_period:]
        return sum(tail) / len(tail)

    # ------------------------------------------------------------------

    def _select_frontend(self, block, mode, analyzed, ops, fused_counts):
        if mode is ThroughputMode.UNROLLED:
            return LegacyFrontEnd(block, ops, fused_counts, self.cfg,
                                  unrolled=True)
        if affected_by_jcc_erratum(block, self.cfg, analyzed):
            return LegacyFrontEnd(block, ops, fused_counts, self.cfg,
                                  unrolled=False)
        if lsd_fits(ops, self.cfg):
            return LsdFrontEnd(fused_counts, self.cfg)
        return DsbFrontEnd(fused_counts, block.num_bytes, self.cfg)

    @staticmethod
    def _eliminated_source(op) -> Optional[str]:
        instr = op.instructions[0]
        if op.info.eliminated and instr.is_reg_move():
            return instr.operands[1].reg.root().name
        return None
