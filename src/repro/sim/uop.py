"""µop expansion: from instructions to the units the back end schedules.

An instruction becomes one or more *fused µops* (the unit occupying IDQ,
issue bandwidth, and ROB entries), each carrying zero or more *dispatched
µops* (the units occupying scheduler entries and execution ports).
Intra-instruction dataflow (address → load → compute → store-data) is
encoded as µop-level source edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.uarch.config import MicroArchConfig
from repro.uops.blockinfo import MacroOp
from repro.uops.info import InstrInfo


@dataclass
class UopSpec:
    """One dispatched µop of an instruction.

    Attributes:
        ports: allowed execution ports.
        latency: cycles from dispatch to result availability.
        reg_sources: root register names read from the register file.
        internal_source: index (within the instruction's dispatched µops)
            whose result this µop consumes, or None.
        produces_results: True when the instruction's written registers
            become available upon this µop's completion.
    """

    ports: FrozenSet[int]
    latency: int
    reg_sources: Tuple[str, ...] = ()
    internal_source: Optional[int] = None
    produces_results: bool = False


@dataclass
class FusedUopSpec:
    """One fused-domain µop (an IDQ entry).

    Attributes:
        uop_indices: indices into the instruction's dispatched-µop list
            (empty for eliminated µops and NOPs).
        issue_cost: renamer issue slots consumed (2 when unlaminated).
    """

    uop_indices: Tuple[int, ...] = ()
    issue_cost: int = 1


@dataclass
class ExpandedOp:
    """A macro-op expanded for the back end.

    Attributes:
        uops: dispatched µops in port_sets order.
        fused: fused-domain grouping of those µops.
        has_producer: True when some dispatched µop produces the
            instruction's register results (False for eliminated moves,
            zero idioms and NOPs).
    """

    uops: List[UopSpec]
    fused: List[FusedUopSpec]

    @property
    def has_producer(self) -> bool:
        return any(u.produces_results for u in self.uops)


def expand_macro_op(op: MacroOp, cfg: MicroArchConfig) -> ExpandedOp:
    """Expand a macro-op into dispatched µops and their fused grouping."""
    info = op.info
    instr = op.instructions[0]

    if info.eliminated or info.is_nop:
        fused = [FusedUopSpec(uop_indices=(), issue_cost=1)
                 for _ in range(info.fused_uops)]
        return ExpandedOp(uops=[], fused=fused)

    reads = tuple(r.name for r in instr.regs_read())
    writes = instr.regs_written()
    mem = instr.mem_operand()
    addr_names: Tuple[str, ...] = ()
    if mem is not None:
        addr_names = tuple(r.root().name for r in mem.address_regs())
    non_addr = tuple(n for n in reads if n not in addr_names)

    load_ports = cfg.ports_for("load")
    std_ports = cfg.ports_for("store_data")
    sta_ports = {cfg.ports_for("store_agu"),
                 cfg.ports_for("store_agu_indexed")}

    loads = instr.template.loads
    stores = instr.template.stores

    # Classify each dispatched µop into a role, in port_sets order.
    uops: List[UopSpec] = []
    load_idx: Optional[int] = None
    sta_idx: Optional[int] = None
    std_idx: Optional[int] = None
    compute_idxs: List[int] = []
    remaining = list(info.port_sets)
    for idx, ports in enumerate(remaining):
        if loads and load_idx is None and ports == load_ports:
            load_idx = idx
        elif stores and std_idx is None and ports == std_ports:
            std_idx = idx
        elif stores and sta_idx is None and ports in sta_ports:
            sta_idx = idx
        else:
            compute_idxs.append(idx)
        uops.append(UopSpec(ports=ports, latency=1))  # placeholder

    if load_idx is not None:
        uops[load_idx] = UopSpec(
            ports=remaining[load_idx], latency=max(1, info.load_latency),
            reg_sources=addr_names,
            produces_results=not compute_idxs and bool(writes))
    if sta_idx is not None:
        uops[sta_idx] = UopSpec(
            ports=remaining[sta_idx], latency=1, reg_sources=addr_names)
    # When no dedicated load/STA µop consumes the address registers (LEA),
    # they are genuine inputs of the compute µop.
    compute_sources = non_addr
    if load_idx is None and sta_idx is None:
        compute_sources = non_addr + addr_names
    for order, idx in enumerate(compute_idxs):
        uops[idx] = UopSpec(
            ports=remaining[idx], latency=max(1, info.latency),
            reg_sources=compute_sources, internal_source=load_idx,
            produces_results=order == 0 and bool(writes))
    if std_idx is not None:
        internal = compute_idxs[0] if compute_idxs else None
        sources = () if compute_idxs else non_addr
        uops[std_idx] = UopSpec(
            ports=remaining[std_idx], latency=1, reg_sources=sources,
            internal_source=internal)

    fused = _partition(info, load_idx, sta_idx, std_idx, compute_idxs)
    return ExpandedOp(uops=uops, fused=fused)


def _partition(info: InstrInfo, load_idx: Optional[int],
               sta_idx: Optional[int], std_idx: Optional[int],
               compute_idxs: List[int]) -> List[FusedUopSpec]:
    """Group dispatched µops into fused-domain µops."""
    n_dispatched = info.dispatched_uops
    if info.fused_uops == 1:
        return [FusedUopSpec(uop_indices=tuple(range(n_dispatched)),
                             issue_cost=info.issued_uops)]

    if (load_idx is not None and std_idx is not None
            and info.fused_uops == 2):
        # Read-modify-write: load+compute fuse; STA+STD fuse.
        main = tuple(i for i in [load_idx] + compute_idxs if i is not None)
        store = tuple(i for i in (sta_idx, std_idx) if i is not None)
        unlaminated = info.issued_uops > info.fused_uops
        return [
            FusedUopSpec(uop_indices=main,
                         issue_cost=len(main) if unlaminated else 1),
            FusedUopSpec(uop_indices=store,
                         issue_cost=len(store) if unlaminated else 1),
        ]

    # One dispatched µop per fused µop (mul_wide, div, xchg, adc, ...).
    return [FusedUopSpec(uop_indices=(i,), issue_cost=1)
            for i in range(n_dispatched)]
