"""The out-of-order back end: rename/issue, dispatch, execute, retire.

The back end consumes delivery units from the IDQ, renames register
sources against the most recent producers, assigns execution ports with a
pressure heuristic (the renamer balances load using occupancy counters —
deliberately *not* the optimal distribution Facile assumes), dispatches at
most one µop per port per cycle, and retires in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.frontend import DeliveryUnit
from repro.sim.uop import ExpandedOp, FusedUopSpec, UopSpec
from repro.uarch.config import MicroArchConfig


@dataclass
class SimOptions:
    """Simulator fidelity knobs.

    Attributes:
        model_resources: enforce RS/ROB capacities and the retire width
            (the uiCA-analog baseline turns this off).
        live_port_counters: update port-pressure counters within an issue
            group instead of once per cycle.  Real renamers work from the
            previous cycle's counters (stale), which is what the oracle
            uses; the live variant is slightly closer to the optimal
            distribution and serves as an ablation.
    """

    model_resources: bool = True
    live_port_counters: bool = False


class _Uop:
    """Runtime state of a dispatched µop."""

    __slots__ = ("spec", "sources", "port", "result_time", "dispatched",
                 "seq")

    def __init__(self, spec: UopSpec, seq: int):
        self.spec = spec
        self.sources: List["_Uop"] = []
        self.port: int = -1
        self.result_time: Optional[int] = None
        self.dispatched = False
        self.seq = seq

    def ready_time(self) -> Optional[int]:
        """Cycle at which all sources are available, or None."""
        ready = 0
        for src in self.sources:
            if src.result_time is None:
                return None
            ready = max(ready, src.result_time)
        return ready


class _FusedUop:
    """Runtime state of a fused-domain µop (ROB entry)."""

    __slots__ = ("uops", "iteration", "ends_iteration", "issue_cost",
                 "issue_time")

    def __init__(self, uops: List[_Uop], issue_cost: int, iteration: int,
                 ends_iteration: bool):
        self.uops = uops
        self.issue_cost = issue_cost
        self.iteration = iteration
        self.ends_iteration = ends_iteration
        self.issue_time: Optional[int] = None

    def completed(self, cycle: int) -> bool:
        return all(u.result_time is not None and u.result_time <= cycle
                   for u in self.uops)


class BackEnd:
    """Renames, schedules and retires the µop stream of one simulation."""

    def __init__(self, expanded: Sequence[ExpandedOp],
                 cfg: MicroArchConfig, options: SimOptions):
        self.expanded = expanded
        self.cfg = cfg
        self.options = options

        self._rename: Dict[str, _Uop] = {}
        self._rob: List[_FusedUop] = []
        self._port_queues: Dict[int, List[_Uop]] = {
            p: [] for p in cfg.ports}
        self._pressure: Dict[int, int] = {p: 0 for p in cfg.ports}
        self._stale_pressure: Dict[int, int] = dict(self._pressure)
        self._rs_occupancy = 0
        self._seq = 0
        self._port_rotation = 0
        self._group_adjust: Dict[int, int] = {}
        # Per-instruction µop instances for internal-source resolution;
        # keyed by (iteration, op_index).
        self._instr_uops: Dict[Tuple[int, int], List[Optional[_Uop]]] = {}
        self._instr_producer: Dict[Tuple[int, int], _Uop] = {}
        self.retire_times: Dict[int, int] = {}  # iteration -> cycle

    # ------------------------------------------------------------------

    def tick(self, cycle: int, idq: List[DeliveryUnit]) -> None:
        """One cycle: dispatch, then issue, then retire."""
        self._dispatch(cycle)
        self._issue(cycle, idq)
        self._retire(cycle)
        self._stale_pressure = dict(self._pressure)
        self._group_adjust.clear()
        # Port preferences restart at slot 0 every cycle (the renamer's
        # per-slot patterns are fixed, not free-running).
        self._port_rotation = 0

    def idq_space(self, capacity: int, idq: List[DeliveryUnit]) -> int:
        return max(0, capacity - len(idq))

    @property
    def in_flight(self) -> int:
        return len(self._rob)

    # -- dispatch -------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        for port, queue in self._port_queues.items():
            best: Optional[_Uop] = None
            best_ready = 0
            for uop in queue:
                ready = uop.ready_time()
                if ready is not None and ready <= cycle:
                    if best is None or uop.seq < best.seq:
                        best, best_ready = uop, ready
            if best is not None:
                best.dispatched = True
                best.result_time = cycle + best.spec.latency
                queue.remove(best)
                self._pressure[port] -= 1
                self._rs_occupancy -= 1

    # -- issue ----------------------------------------------------------

    def _issue(self, cycle: int, idq: List[DeliveryUnit]) -> None:
        cfg = self.cfg
        slots = cfg.issue_width
        while idq and slots > 0:
            unit = idq[0]
            op = self.expanded[unit.op_index]
            fused_spec = op.fused[unit.fused_index]
            if fused_spec.issue_cost > slots:
                break
            if self.options.model_resources:
                if len(self._rob) >= cfg.rob_size:
                    break
                if (self._rs_occupancy + len(fused_spec.uop_indices)
                        > cfg.rs_size):
                    break
            idq.pop(0)
            slots -= fused_spec.issue_cost
            self._issue_fused(cycle, unit, op, fused_spec)

    def _issue_fused(self, cycle: int, unit: DeliveryUnit,
                     op: ExpandedOp, fused_spec: FusedUopSpec) -> None:
        key = (unit.iteration, unit.op_index)
        instr_uops = self._instr_uops.setdefault(
            key, [None] * len(op.uops))

        members: List[_Uop] = []
        for uop_index in fused_spec.uop_indices:
            spec = op.uops[uop_index]
            uop = _Uop(spec, self._seq)
            self._seq += 1
            for root in spec.reg_sources:
                producer = self._rename.get(root)
                if producer is not None:
                    uop.sources.append(producer)
            if spec.internal_source is not None:
                internal = instr_uops[spec.internal_source]
                if internal is not None:
                    uop.sources.append(internal)
            instr_uops[uop_index] = uop
            port = self._assign_port(spec)
            uop.port = port
            self._port_queues[port].append(uop)
            self._pressure[port] += 1
            self._rs_occupancy += 1
            members.append(uop)

        fused = _FusedUop(members, fused_spec.issue_cost, unit.iteration,
                          unit.ends_iteration)
        fused.issue_time = cycle
        self._rob.append(fused)

        # Eliminated µops and NOPs complete at issue; their "results" (for
        # eliminated moves) are the renamed source, which we approximate
        # with an immediately-available value of zero latency.
        if not members:
            pseudo = _Uop(UopSpec(ports=frozenset(), latency=0), self._seq)
            self._seq += 1
            pseudo.result_time = cycle
            pseudo.dispatched = True
            fused.uops.append(pseudo)

        # Remember the producing µop; the rename table is only updated
        # once the instruction's *last* fused µop has issued, so that all
        # of the instruction's µops read the pre-instruction state (a
        # div's later µops must not depend on its own first µop).
        for uop in members:
            if uop.spec.produces_results:
                self._instr_producer[key] = uop
                break
        if self._is_last_fused(unit, op):
            producer = self._instr_producer.pop(key, None)
            self._register_writes(unit, op, fused_spec, producer, cycle)

    def _register_writes(self, unit: DeliveryUnit, op: ExpandedOp,
                         fused_spec: FusedUopSpec,
                         producer: Optional[_Uop], cycle: int) -> None:
        written = self._written_roots(unit.op_index)
        if not written:
            return
        if producer is None:
            # Eliminated move / zero idiom: value ready immediately; for
            # eliminated moves the dependents inherit the source producer.
            source = self._eliminated_source(unit.op_index)
            if source is not None:
                inherited = self._rename.get(source)
                if inherited is not None:
                    for root in written:
                        self._rename[root] = inherited
                    return
            pseudo = _Uop(UopSpec(ports=frozenset(), latency=0), self._seq)
            self._seq += 1
            pseudo.result_time = cycle
            pseudo.dispatched = True
            for root in written:
                self._rename[root] = pseudo
            return
        for root in written:
            self._rename[root] = producer

    def _is_last_fused(self, unit: DeliveryUnit, op: ExpandedOp) -> bool:
        return unit.fused_index == len(op.fused) - 1

    # These two lookups are filled in by the simulator via set_block_info.
    _written_roots_cache: List[List[str]]
    _eliminated_sources: List[Optional[str]]

    def set_block_info(self, written_roots: List[List[str]],
                       eliminated_sources: List[Optional[str]]) -> None:
        self._written_roots_cache = written_roots
        self._eliminated_sources = eliminated_sources

    def _written_roots(self, op_index: int) -> List[str]:
        return self._written_roots_cache[op_index]

    def _eliminated_source(self, op_index: int) -> Optional[str]:
        return self._eliminated_sources[op_index]

    # -- port assignment --------------------------------------------------

    def _assign_port(self, spec: UopSpec) -> int:
        """Pressure-based port choice, as real renamers do.

        The oracle default uses the occupancy counters of the *previous*
        cycle (stale), rotating among equally-loaded candidates — the
        behaviour uiCA reverse-engineered.  This is close to, but not
        exactly, the optimal distribution Facile assumes, which is the
        main source of Facile's (small, always optimistic) Ports error.
        """
        if not spec.ports:
            raise ValueError("dispatchable µop without ports")
        if self.options.live_port_counters:
            counters = self._pressure
            effective = {p: counters[p] for p in spec.ports}
        else:
            # Stale counters (previous cycle) plus a within-group adjust:
            # the renamer spreads the µops of one issue group even though
            # its global view is one cycle old.
            effective = {
                p: self._stale_pressure[p] + self._group_adjust.get(p, 0)
                for p in spec.ports}
        candidates = sorted(spec.ports)
        best = min(effective[p] for p in candidates)
        minimal = [p for p in candidates if effective[p] == best]
        if len(minimal) > 1:
            # Tie-break on the true backlog (undispatched µops), so that
            # within-group adjustments do not mask a loaded port.
            backlog = min(self._pressure[p] for p in minimal)
            minimal = [p for p in minimal if self._pressure[p] == backlog]
        port = minimal[self._port_rotation % len(minimal)]
        self._port_rotation += 1
        self._group_adjust[port] = self._group_adjust.get(port, 0) + 1
        return port

    # -- retire -----------------------------------------------------------

    def _retire(self, cycle: int) -> None:
        width = (self.cfg.retire_width if self.options.model_resources
                 else 10 ** 9)
        retired = 0
        while self._rob and retired < width:
            head = self._rob[0]
            if not head.completed(cycle):
                break
            self._rob.pop(0)
            retired += 1
            if head.ends_iteration:
                self.retire_times[head.iteration] = cycle
                # Per-instruction µop maps are no longer needed.
                self._gc_iteration(head.iteration)

    def _gc_iteration(self, iteration: int) -> None:
        stale = [key for key in self._instr_uops if key[0] < iteration]
        for key in stale:
            del self._instr_uops[key]
