"""Cycle-level pipeline simulator (the measurement substrate).

The paper's ground truth is hardware measurements of nine Intel CPUs made
with the BHive profiler.  Offline, this package provides the substitute: a
detailed cycle-by-cycle pipeline simulator in the style of uiCA, covering

* the legacy front end (predecoder timing incl. LCP stalls and 16-byte
  boundary effects, the instruction queue with macro fusion, and the
  complex/simple decoder allocation),
* the DSB and LSD delivery paths (with LSD unrolling and the JCC-erratum
  fallback),
* the back end (renaming with move elimination and unlamination, the
  issue width, pressure-based — *not* optimal — port assignment, execution
  latencies, and RS/ROB/retire resource limits).

Crucially, the simulator models second-order effects that Facile
deliberately idealizes (real port assignment, finite buffers), so the
error structure of the paper — Facile accurate and always optimistic —
emerges mechanically rather than by construction.

:func:`~repro.sim.measure.measure` is the BHive-profiler substitute: it
returns the steady-state cycles per iteration rounded to two decimals.
"""

from repro.sim.simulator import SimOptions, Simulator
from repro.sim.measure import Measurement, measure, measure_suite

__all__ = ["Measurement", "SimOptions", "Simulator", "measure",
           "measure_suite"]
