"""Front-end delivery engines for the pipeline simulator.

Three paths, selected per §4.2 of the paper:

* **Legacy** (predecoder → IQ → decoders): used for unrolled execution and
  for loops hit by the JCC erratum.  Predecode timing follows the 16-byte
  block walk (5 instructions/cycle, LCP penalties, boundary-crossing
  slots) with back-pressure from the instruction queue; decode groups
  follow the complex/simple decoder allocation rules of Algorithm 1.
* **DSB**: up to `dsb_width` fused µops per cycle; for blocks shorter than
  32 bytes delivery stops at the loop branch (same-32-byte-window rule).
* **LSD**: the locked IDQ streams up to `issue_width` µops per cycle, with
  the iteration-boundary bubble amortized over the LSD unroll window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.lsd import lsd_unroll_count
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.blockinfo import MacroOp

#: Instruction-queue capacity (predecoded instructions).  Approximation:
#: Intel documents 20-25 entries across these generations.
IQ_SIZE = 25


@dataclass
class DeliveryUnit:
    """One fused µop's worth of delivery, tagged for bookkeeping.

    Attributes:
        op_index: macro-op index within the block.
        fused_index: fused-µop index within the macro-op.
        iteration: loop iteration this instance belongs to.
        ends_iteration: True for the last fused µop of an iteration.
    """

    op_index: int
    fused_index: int
    iteration: int
    ends_iteration: bool


class _UnitStream:
    """Generates the per-iteration sequence of delivery units."""

    def __init__(self, fused_counts: Sequence[int]):
        self.fused_counts = list(fused_counts)
        self.per_iteration = sum(self.fused_counts)

    def units_for_iteration(self, iteration: int) -> List[DeliveryUnit]:
        units = []
        for op_index, count in enumerate(self.fused_counts):
            for fused_index in range(count):
                units.append(DeliveryUnit(op_index, fused_index, iteration,
                                          False))
        if units:
            units[-1].ends_iteration = True
        return units


class LsdFrontEnd:
    """The locked-IDQ streaming path."""

    def __init__(self, fused_counts: Sequence[int], cfg: MicroArchConfig):
        self._stream = _UnitStream(fused_counts)
        self._width = cfg.issue_width
        n_uops = self._stream.per_iteration
        self._unroll = lsd_unroll_count(n_uops, cfg)
        self._window: List[DeliveryUnit] = []
        self._iteration = 0

    def tick(self, idq: List[DeliveryUnit], idq_space: int) -> None:
        del idq_space  # the LSD bypasses IDQ capacity: µops are locked
        delivered = 0
        while delivered < self._width:
            if not self._window:
                if delivered > 0:
                    return  # window boundary: bubble until next cycle
                for _ in range(self._unroll):
                    self._window.extend(
                        self._stream.units_for_iteration(self._iteration))
                    self._iteration += 1
            idq.append(self._window.pop(0))
            delivered += 1


class DsbFrontEnd:
    """The µop-cache delivery path."""

    def __init__(self, fused_counts: Sequence[int], block_length: int,
                 cfg: MicroArchConfig):
        self._stream = _UnitStream(fused_counts)
        self._width = cfg.dsb_width
        self._stall_at_branch = block_length < 32
        self._pending: List[DeliveryUnit] = []
        self._iteration = 0

    def tick(self, idq: List[DeliveryUnit], idq_space: int) -> None:
        delivered = 0
        while delivered < self._width and idq_space > 0:
            if not self._pending:
                self._pending = self._stream.units_for_iteration(
                    self._iteration)
                self._iteration += 1
            unit = self._pending.pop(0)
            idq.append(unit)
            delivered += 1
            idq_space -= 1
            if unit.ends_iteration and self._stall_at_branch:
                return


class LegacyFrontEnd:
    """Predecoder → IQ → decoders."""

    def __init__(self, block: BasicBlock, ops: Sequence[MacroOp],
                 fused_counts: Sequence[int], cfg: MicroArchConfig,
                 unrolled: bool):
        self.cfg = cfg
        self.ops = ops
        self.fused_counts = list(fused_counts)
        self._iq: List[Tuple[int, int]] = []  # (op_index, iteration)
        self._pd = _PredecodeSchedule(block, ops, unrolled)
        self._pd_clock = -1

    def tick(self, idq: List[DeliveryUnit], idq_space: int) -> None:
        self._predecode_tick()
        self._decode_tick(idq, idq_space)

    # -- predecode ------------------------------------------------------

    def _predecode_tick(self) -> None:
        if len(self._iq) > IQ_SIZE - self.cfg.predecode_width:
            return  # IQ back-pressure: the predecoder stalls
        self._pd_clock += 1
        for op_index, iteration in self._pd.ready_at(self._pd_clock):
            self._iq.append((op_index, iteration))

    # -- decode ---------------------------------------------------------

    def _decode_tick(self, idq: List[DeliveryUnit], idq_space: int) -> None:
        """Decode one group per cycle.

        Every cycle's group starts at the complex decoder (decoder 0) —
        this is exactly the grouping Algorithm 1 of the paper counts: each
        allocation to decoder 0 corresponds to one decode cycle.
        """
        cfg = self.cfg
        n_dec = cfg.n_decoders
        cur_dec = 0
        n_avail_simple = 0
        first_in_cycle = True
        while self._iq:
            op_index, iteration = self._iq[0]
            op = self.ops[op_index]
            fused = self.fused_counts[op_index]
            if idq_space < fused:
                break
            if first_in_cycle:
                # The complex decoder always takes the first instruction.
                n_avail_simple = (
                    op.info.n_available_simple_decoders
                    if op.info.requires_complex_decoder
                    else n_dec - 1)
                first_in_cycle = False
            else:
                if op.info.requires_complex_decoder:
                    break  # must wait for next cycle's complex decoder
                blocked_on_last = (
                    cur_dec + 1 == n_dec - 1
                    and op.is_macro_fusible
                    and not cfg.macro_fusible_on_last_decoder)
                if n_avail_simple == 0 or blocked_on_last:
                    break
                cur_dec += 1
                n_avail_simple -= 1
            self._iq.pop(0)
            ends = op_index == len(self.ops) - 1
            for fused_index in range(fused):
                idq.append(DeliveryUnit(
                    op_index, fused_index, iteration,
                    ends and fused_index == fused - 1))
            idq_space -= fused
            if op.is_branch:
                break


class _PredecodeSchedule:
    """Periodic predecode timing, shared logic with the Predec bound.

    The schedule records, for one period (lcm(l,16)/l iterations when
    unrolled, one iteration for loops), the cycle at which each macro-op
    becomes available, plus the period length in cycles.  A macro-op is
    available once all its instructions are predecoded.
    """

    def __init__(self, block: BasicBlock, ops: Sequence[MacroOp],
                 unrolled: bool):
        length = block.num_bytes
        self.period_iterations = (
            math.lcm(length, 16) // length if unrolled else 1)
        offsets = block.instruction_offsets()

        # Finish cycle of every instruction instance across the period.
        n_blocks = math.ceil(self.period_iterations * length / 16)
        per_block: List[List[Tuple[int, int, bool]]] = [
            [] for _ in range(n_blocks)]
        lcp_per_block = [0] * n_blocks
        for copy in range(self.period_iterations):
            base = copy * length
            for pos, instr in enumerate(block):
                start = base + offsets[pos]
                opcode_block = (start + instr.opcode_offset) // 16
                last_block = (start + instr.length - 1) // 16
                instance = copy * len(block) + pos
                if opcode_block != last_block:
                    per_block[opcode_block].append((instance, pos, False))
                per_block[last_block].append((instance, pos, True))
                if instr.has_lcp:
                    lcp_per_block[opcode_block] += 1

        finish: dict = {}
        clock = 0
        width = 5
        # Every 16-byte block contains at least one instruction end or a
        # crossing opcode (instructions are at most 15 bytes long).
        cycles_nlcp = [math.ceil(len(slots) / width) for slots in per_block]
        for b in range(n_blocks):
            prev = cycles_nlcp[b - 1]
            penalty = max(0, 3 * lcp_per_block[b] - max(0, prev - 1))
            clock += penalty
            for slot, (instance, pos, is_end) in enumerate(per_block[b]):
                if is_end:
                    finish[instance] = clock + slot // width
            clock += cycles_nlcp[b]
        self.period_cycles = max(1, clock)

        # Availability of macro-ops: all member instructions predecoded.
        # The list is kept in program order — predecode finish times are
        # non-decreasing along the instruction stream by construction,
        # and the IQ/decoders must see instructions in order.
        self._schedule: List[Tuple[int, int, int]] = []
        for copy in range(self.period_iterations):
            for op_index, op in enumerate(ops):
                instances = [copy * len(block) + op.first_index + k
                             for k in range(len(op.instructions))]
                ready = max(finish[i] for i in instances)
                self._schedule.append((ready, op_index, copy))
        assert all(a[0] <= b[0] for a, b in zip(self._schedule,
                                                self._schedule[1:]))
        self._cursor = 0
        self._period_count = 0

    def ready_at(self, clock: int) -> Iterator[Tuple[int, int]]:
        """Yield (op_index, iteration) for macro-ops ready by *clock*."""
        while True:
            if self._cursor >= len(self._schedule):
                self._cursor = 0
                self._period_count += 1
            ready, op_index, copy = self._schedule[self._cursor]
            absolute = ready + self._period_count * self.period_cycles
            if absolute > clock:
                return
            iteration = (copy
                         + self._period_count * self.period_iterations)
            yield op_index, iteration
            self._cursor += 1
