"""The measurement harness (BHive-profiler substitute).

The original evaluation measures each benchmark on real CPUs with the
BHive profiler and rounds the result to two decimal digits.  This module
provides the drop-in substitute: steady-state throughput measured on the
oracle simulator, rounded the same way, with a per-(block, µarch, mode)
cache because every predictor comparison reuses the same measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.sim.backend import SimOptions
from repro.sim.simulator import Simulator
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


@dataclass(frozen=True)
class Measurement:
    """One measured benchmark."""

    block: BasicBlock
    mode: ThroughputMode
    cycles: float


_CACHE: Dict[Tuple[bytes, str, str], float] = {}


def measure(block: BasicBlock, cfg: MicroArchConfig,
            mode: ThroughputMode,
            db: Optional[UopsDatabase] = None,
            use_cache: bool = True) -> float:
    """Measured steady-state cycles/iteration, rounded to 2 decimals."""
    key = (block.raw, cfg.abbrev, mode.value)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    simulator = Simulator(cfg, SimOptions(), db)
    cycles = round(simulator.throughput(block, mode), 2)
    if use_cache:
        _CACHE[key] = cycles
    return cycles


def measure_suite(blocks: Sequence[BasicBlock], cfg: MicroArchConfig,
                  mode: ThroughputMode,
                  db: Optional[UopsDatabase] = None) -> List[Measurement]:
    """Measure a whole suite, sharing the uops database."""
    db = db or UopsDatabase(cfg)
    return [Measurement(block, mode, measure(block, cfg, mode, db))
            for block in blocks]


def cached_measurement(block: BasicBlock, cfg: MicroArchConfig,
                       mode: ThroughputMode) -> Optional[float]:
    """The cached measurement of *block*, or None when not yet measured."""
    return _CACHE.get((block.raw, cfg.abbrev, mode.value))


def store_measurement(block: BasicBlock, cfg: MicroArchConfig,
                      mode: ThroughputMode, cycles: float) -> None:
    """Insert an externally produced measurement (e.g. from the engine's
    worker pool) into the process-wide cache."""
    _CACHE[(block.raw, cfg.abbrev, mode.value)] = cycles


def clear_cache() -> None:
    """Drop all cached measurements (for tests)."""
    _CACHE.clear()
